"""Interval algebra for fault detection ranges.

Detection ranges of small delay faults (Sec. II-A of the paper) are unions of
disjoint time intervals on the observation-time axis.  This module provides an
immutable :class:`IntervalSet` with the operations the test flow needs:

* union / intersection / difference,
* shifting along the time axis (monitor delay elements, Sec. III-B),
* clipping to the observable FAST window ``(t_min, t_nom)``,
* pessimistic pulse filtering (glitches shorter than a threshold are dropped,
  the surviving neighbours are *not* merged, cf. Fig. 1).

All interval endpoints are floats in the circuit's native time unit
(picoseconds throughout this code base).  Intervals are treated as closed
``[lo, hi]`` with a configurable comparison tolerance ``EPS``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

#: Absolute tolerance used when comparing interval endpoints (picoseconds).
EPS = 1e-9


@dataclass(frozen=True, order=True)
class Interval:
    """A closed time interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints must not be NaN")
        if self.hi < self.lo - EPS:
            raise ValueError(f"empty interval: [{self.lo}, {self.hi}]")

    @property
    def length(self) -> float:
        """Width of the interval (0 for a degenerate point interval)."""
        return max(0.0, self.hi - self.lo)

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def contains(self, t: float, *, tol: float = EPS) -> bool:
        """Return True if time ``t`` lies inside the interval (within tol)."""
        return self.lo - tol <= t <= self.hi + tol

    def overlaps(self, other: "Interval", *, tol: float = EPS) -> bool:
        """Return True if the two intervals intersect (within tol)."""
        return self.lo <= other.hi + tol and other.lo <= self.hi + tol

    def shifted(self, d: float) -> "Interval":
        """Interval translated by ``d`` time units (monitor delay shift)."""
        return Interval(self.lo + d, self.hi + d)

    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection with ``other``, or None when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if hi < lo - EPS:
            return None
        return Interval(lo, min(hi, max(lo, hi)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.lo:g}, {self.hi:g}]"


class IntervalSet:
    """An immutable union of disjoint, sorted closed intervals.

    The constructor normalises its input: overlapping or touching intervals
    (within ``EPS``) are merged and zero-length fragments below ``EPS`` are
    kept as degenerate points only if explicitly allowed via ``keep_points``.
    """

    __slots__ = ("_ivals",)

    def __init__(self, intervals: Iterable[Interval | tuple[float, float]] = (),
                 *, keep_points: bool = False) -> None:
        items: list[Interval] = []
        for iv in intervals:
            if not isinstance(iv, Interval):
                iv = Interval(float(iv[0]), float(iv[1]))
            if iv.length <= EPS and not keep_points:
                continue
            items.append(iv)
        items.sort()
        merged: list[Interval] = []
        for iv in items:
            if merged and iv.lo <= merged[-1].hi + EPS:
                last = merged.pop()
                merged.append(Interval(last.lo, max(last.hi, iv.hi)))
            else:
                merged.append(iv)
        object.__setattr__(self, "_ivals", tuple(merged))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "IntervalSet":
        return _EMPTY

    @classmethod
    def single(cls, lo: float, hi: float) -> "IntervalSet":
        return cls([Interval(lo, hi)])

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]]) -> "IntervalSet":
        return cls(Interval(a, b) for a, b in pairs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> tuple[Interval, ...]:
        return self._ivals

    @property
    def is_empty(self) -> bool:
        return not self._ivals

    @property
    def measure(self) -> float:
        """Total length of all intervals."""
        return sum(iv.length for iv in self._ivals)

    @property
    def span(self) -> Interval | None:
        """Smallest interval containing the whole set, or None if empty."""
        if not self._ivals:
            return None
        return Interval(self._ivals[0].lo, self._ivals[-1].hi)

    def boundaries(self) -> list[float]:
        """All interval endpoints in ascending order (with duplicates kept)."""
        out: list[float] = []
        for iv in self._ivals:
            out.append(iv.lo)
            out.append(iv.hi)
        return out

    def contains(self, t: float, *, tol: float = EPS) -> bool:
        """Membership test for a single observation time."""
        # Binary search over the sorted disjoint intervals.
        lo, hi = 0, len(self._ivals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self._ivals[mid]
            if t < iv.lo - tol:
                hi = mid - 1
            elif t > iv.hi + tol:
                lo = mid + 1
            else:
                return True
        return False

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivals)

    def __len__(self) -> int:
        return len(self._ivals)

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        if len(self._ivals) != len(other._ivals):
            return False
        return all(
            abs(a.lo - b.lo) <= EPS and abs(a.hi - b.hi) <= EPS
            for a, b in zip(self._ivals, other._ivals)
        )

    def __hash__(self) -> int:
        return hash(tuple((round(iv.lo, 6), round(iv.hi, 6)) for iv in self._ivals))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = " ∪ ".join(repr(iv) for iv in self._ivals) or "∅"
        return f"IntervalSet({inner})"

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "IntervalSet") -> "IntervalSet":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return IntervalSet([*self._ivals, *other._ivals])

    __or__ = union

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        out: list[Interval] = []
        i = j = 0
        a, b = self._ivals, other._ivals
        while i < len(a) and j < len(b):
            iv = a[i].intersect(b[j])
            if iv is not None and iv.length > EPS:
                out.append(iv)
            if a[i].hi < b[j].hi:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    __and__ = intersection

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self \\ other``."""
        out: list[Interval] = []
        for iv in self._ivals:
            pieces = [iv]
            for cut in other._ivals:
                if cut.lo > iv.hi:
                    break
                next_pieces: list[Interval] = []
                for p in pieces:
                    if not p.overlaps(cut):
                        next_pieces.append(p)
                        continue
                    if cut.lo - p.lo > EPS:
                        next_pieces.append(Interval(p.lo, cut.lo))
                    if p.hi - cut.hi > EPS:
                        next_pieces.append(Interval(cut.hi, p.hi))
                pieces = next_pieces
            out.extend(pieces)
        return IntervalSet(out)

    __sub__ = difference

    # ------------------------------------------------------------------
    # FAST-specific transformations
    # ------------------------------------------------------------------
    def shifted(self, d: float) -> "IntervalSet":
        """Translate every interval by ``d`` (Sec. III-B, ``I_SR = I_FF + d``).

        Translation preserves ordering, disjointness and lengths, so the
        canonical form survives and the constructor's sort-and-merge pass
        is skipped — this sits on the hot path of detection-range unions
        and of the rescheduling engine's per-pattern overlays.
        """
        if d == 0.0 or self.is_empty:
            return self
        out = object.__new__(IntervalSet)
        object.__setattr__(out, "_ivals",
                           tuple(iv.shifted(d) for iv in self._ivals))
        return out

    def clipped(self, lo: float, hi: float) -> "IntervalSet":
        """Restrict the set to the observable window ``[lo, hi]``."""
        if hi <= lo:
            return _EMPTY
        return self.intersection(IntervalSet.single(lo, hi))

    def filter_glitches(self, threshold: float) -> "IntervalSet":
        """Drop intervals shorter than ``threshold`` (pessimistic, Fig. 1).

        Intervals separated by a filtered glitch are kept disjoint; no merging
        across removed pieces happens, matching the paper's pessimism.
        Because the constructor already merged touching intervals, filtering
        here can only remove whole intervals.
        """
        if threshold <= 0:
            return self
        kept = [iv for iv in self._ivals if iv.length + EPS >= threshold]
        if len(kept) == len(self._ivals):
            return self
        return IntervalSet(kept)

    def midpoints(self) -> list[float]:
        """Midpoint of every interval (robust observation-time candidates)."""
        return [iv.midpoint for iv in self._ivals]


class IntervalAccumulator:
    """Mutable union builder for :class:`IntervalSet`.

    Repeatedly calling ``a = a.union(b)`` re-normalizes (sorts + merges) the
    accumulated set on every step — O(n²) over a long reduction.  The
    accumulator just collects raw intervals and normalizes once in
    :meth:`build`, which yields the identical canonical ``IntervalSet``
    (union is associative and the constructor performs the same merge).
    """

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: list[Interval] = []

    def add(self, intervals: "IntervalSet | Iterable[Interval]") -> None:
        """Accumulate all intervals of an :class:`IntervalSet` (or iterable)."""
        if isinstance(intervals, IntervalSet):
            self._parts.extend(intervals.intervals)
        else:
            self._parts.extend(intervals)

    def add_interval(self, lo: float, hi: float) -> None:
        self._parts.append(Interval(lo, hi))

    @property
    def is_empty(self) -> bool:
        """True when nothing was accumulated (build() would be empty too —
        the constructor can only drop degenerate pieces, never add)."""
        return not self._parts

    def build(self) -> IntervalSet:
        """Normalize the accumulated intervals into one IntervalSet."""
        if not self._parts:
            return _EMPTY
        return IntervalSet(self._parts)


_EMPTY = IntervalSet()


def _interval_unchecked(lo: float, hi: float) -> Interval:
    """:class:`Interval` without ``__post_init__`` validation.

    For callers that construct intervals from already-validated numeric
    arrays (the word-parallel simulation engine materializes thousands of
    detection pieces per run); the dataclass machinery dominates otherwise.
    """
    iv = Interval.__new__(Interval)
    object.__setattr__(iv, "lo", lo)
    object.__setattr__(iv, "hi", hi)
    return iv


def _interval_set_from_sorted(ivals: tuple[Interval, ...]) -> IntervalSet:
    """:class:`IntervalSet` from already-canonical intervals.

    Callers must guarantee the constructor's invariants: sorted, pairwise
    disjoint with gaps ``> EPS`` and no piece of length ``<= EPS``.
    """
    s = IntervalSet.__new__(IntervalSet)
    object.__setattr__(s, "_ivals", ivals)
    return s


def segment_points(boundaries: Sequence[float], lo: float, hi: float) -> list[float]:
    """Deduplicated cut points partitioning ``[lo, hi]`` at ``boundaries``.

    The sorted point list always starts at ``lo`` and ends at ``hi``;
    consecutive points differ by more than ``EPS`` (duplicate interval
    endpoints collapse), so every implied segment has positive length.
    Boundaries outside ``[lo, hi]`` are ignored.  Returns ``[]`` when the
    window itself is empty.  This is the sweep-line skeleton shared by
    :func:`segment_axis` and the vectorized observation-time discretization
    (Sec. IV-A).
    """
    if hi <= lo:
        return []
    pts = sorted({lo, hi, *(b for b in boundaries if lo < b < hi)})
    dedup: list[float] = []
    for p in pts:
        if not dedup or p - dedup[-1] > EPS:
            dedup.append(p)
    if len(dedup) < 2:
        return [lo, hi]
    return dedup


def segment_axis(boundaries: Sequence[float], lo: float, hi: float) -> list[Interval]:
    """Split ``[lo, hi]`` into segments at the given boundary times.

    Used by the observation-time discretization (Sec. IV-A, Fig. 5): the
    boundaries of all fault detection intervals partition the time axis into
    segments within which the detected fault set is constant.
    Boundaries outside ``[lo, hi]`` are ignored; duplicates are collapsed.
    """
    pts = segment_points(boundaries, lo, hi)
    return [Interval(a, b) for a, b in zip(pts, pts[1:])]
