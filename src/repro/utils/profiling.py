"""Lightweight wall-clock stage profiling for the hot simulation paths.

A :class:`StageTimer` accumulates elapsed seconds (and hit counts) under
named stages.  The fault-simulation engine feeds it the per-stage split —
``pregrade`` / ``base_sim`` / ``faulty_sim`` / ``intervals`` — and the
benchmark suite persists the result to ``BENCH_detection.json`` so every PR
leaves a machine-readable perf trajectory behind (see EXPERIMENTS.md).

Nested :meth:`StageTimer.stage` contexts are tracked hierarchically: an
inner block is credited under the path key ``outer/inner`` and its elapsed
time is *subtracted* from the outer block's credit, so :meth:`total` always
equals true wall clock no matter how deeply (or re-entrantly) contexts
nest.  Plain :meth:`add` calls are unaffected — they credit exactly what
the caller measured.

The timer is opt-in and costs two ``perf_counter()`` calls per measured
block; hot loops guard on ``timer is not None`` so the default path pays
nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class StageTimer:
    """Accumulates wall-clock time per named stage."""

    __slots__ = ("totals", "counts", "_stack")

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        # Active stage() frames: [name, child_elapsed_seconds].
        self._stack: list[list] = []

    def __getstate__(self) -> dict[str, object]:
        # Active frames are meaningless across processes; ship totals only.
        return {"totals": self.totals, "counts": self.counts}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.totals = state["totals"]  # type: ignore[assignment]
        self.counts = state["counts"]  # type: ignore[assignment]
        self._stack = []

    def add(self, stage: str, seconds: float, *, count: int = 1) -> None:
        """Credit ``seconds`` (and ``count`` hits) to ``stage``."""
        self.totals[stage] = self.totals.get(stage, 0.0) + seconds
        self.counts[stage] = self.counts.get(stage, 0) + count

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager measuring one block.

        Nested (or re-entrant) contexts record under hierarchical
        ``parent/child`` keys and credit each frame with its *self* time
        only, so summing all stages never double-counts wall clock.
        """
        t0 = time.perf_counter()
        frame = [name, 0.0]
        self._stack.append(frame)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            label = "/".join(f[0] for f in self._stack)
            self._stack.pop()
            if self._stack:
                self._stack[-1][1] += elapsed
            self.add(label, elapsed - frame[1])

    def total(self, stage: str | None = None) -> float:
        """Seconds spent in ``stage`` (all stages when None)."""
        if stage is None:
            return sum(self.totals.values())
        return self.totals.get(stage, 0.0)

    def merge(self, other: "StageTimer") -> None:
        """Fold another timer's stages into this one."""
        for stage, seconds in other.totals.items():
            self.add(stage, seconds, count=other.counts.get(stage, 0))

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-ready ``{stage: {"seconds": s, "count": n}}`` mapping."""
        return {
            stage: {"seconds": self.totals[stage],
                    "count": self.counts.get(stage, 0)}
            for stage in sorted(self.totals)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self.totals.items()))
        return f"StageTimer({inner})"
