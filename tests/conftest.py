"""Shared fixtures.

Expensive artifacts (generated circuits, full flow results) are session
scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import os

import pytest

from repro.circuits.generators import CircuitProfile, generate_circuit
from repro.circuits.library import embedded_circuit
from repro.core import FlowConfig, HdfTestFlow
from repro.netlist.bench import parse_bench

# Keep the unit-test suite hermetic: never read or populate the shared
# on-disk flow cache (cache-specific tests re-enable it against tmp dirs).
os.environ.setdefault("REPRO_FLOW_CACHE", "0")

TINY_BENCH = """
INPUT(A)
INPUT(B)
INPUT(C)
OUTPUT(F)
G1 = NAND(A, B)
G2 = NOR(B, C)
G3 = XOR(G1, G2)
G4 = DFF(G3)
G5 = AND(G3, G4)
G6 = DFF(G5)
F = OR(G5, G6)
"""


@pytest.fixture()
def tiny_circuit():
    """A fresh 5-gate sequential circuit (mutable per test)."""
    return parse_bench(TINY_BENCH, name="tiny")


@pytest.fixture(scope="session")
def s27():
    return embedded_circuit("s27")


@pytest.fixture(scope="session")
def c17():
    return embedded_circuit("c17")


@pytest.fixture(scope="session")
def small_generated():
    """A deterministic ~60-gate circuit with monitors-relevant structure."""
    profile = CircuitProfile(
        name="gen60", n_gates=60, n_ffs=12, n_inputs=8, n_outputs=4,
        depth=7, seed=5, endpoint_side_gates=1,
        short_path_ppo_fraction=0.3)
    return generate_circuit(profile)


@pytest.fixture(scope="session")
def flow_result_small(small_generated):
    """Full flow (with schedules and coverage schedules) on gen60."""
    config = FlowConfig(atpg_seed=3, coverage_targets=(0.95, 0.90))
    return HdfTestFlow(small_generated, config).run(
        with_schedules=True, with_coverage_schedules=True)


@pytest.fixture(scope="session")
def flow_result_s27():
    config = FlowConfig(atpg_seed=3)
    return HdfTestFlow(embedded_circuit("s27"), config).run()
