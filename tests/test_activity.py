"""Tests for switching-activity analysis."""

from __future__ import annotations

import random

import pytest

from repro.simulation.activity import (
    activity_factors,
    measure_activity,
    workload_aging_scenario,
)


@pytest.fixture(scope="module")
def workload(s27):
    rng = random.Random(4)
    width = len(s27.sources())
    return [
        (tuple(rng.randint(0, 1) for _ in range(width)),
         tuple(rng.randint(0, 1) for _ in range(width)))
        for _ in range(16)
    ]


class TestMeasure:
    def test_counts_match_waveforms(self, s27, workload):
        from repro.simulation.wave_sim import WaveformSimulator
        report = measure_activity(s27, workload)
        sim = WaveformSimulator(s27)
        expected = [0] * len(s27.gates)
        for v1, v2 in workload:
            res = sim.simulate(list(v1), list(v2))
            for g in range(len(s27.gates)):
                expected[g] += res.waveforms[g].num_transitions
        assert list(report.toggles) == expected

    def test_quiet_workload_no_toggles(self, s27):
        width = len(s27.sources())
        still = [((0,) * width, (0,) * width)] * 4
        report = measure_activity(s27, still)
        assert report.total_toggles == 0

    def test_rate(self, s27, workload):
        report = measure_activity(s27, workload)
        g = s27.index_of("G11")
        assert report.rate(g) == pytest.approx(
            report.toggles[g] / len(workload))

    def test_busiest_sorted(self, s27, workload):
        report = measure_activity(s27, workload)
        top = report.busiest(4)
        counts = [c for _n, c in top]
        assert counts == sorted(counts, reverse=True)

    def test_empty_workload(self, s27):
        report = measure_activity(s27, [])
        assert report.rate(0) == 0.0


class TestFactors:
    def test_mean_normalized(self, s27, workload):
        report = measure_activity(s27, workload)
        factors = activity_factors(report)
        mean = sum(factors.values()) / len(factors)
        assert mean == pytest.approx(1.0)

    def test_floor_applied(self, s27):
        width = len(s27.sources())
        still = [((0,) * width, (0,) * width)] * 4
        factors = activity_factors(measure_activity(s27, still), floor=0.05)
        # Everything quiescent -> uniform factors after normalization.
        assert all(v == pytest.approx(1.0) for v in factors.values())

    def test_only_combinational_gates(self, s27, workload):
        factors = activity_factors(measure_activity(s27, workload))
        assert set(factors) == set(s27.combinational_gates())


class TestWorkloadScenario:
    def test_busy_gates_age_faster(self, s27, workload):
        scenario = workload_aging_scenario(s27, workload, seed=3)
        report = measure_activity(s27, workload)
        factors = activity_factors(report)
        busy = max(factors, key=factors.get)
        idle = min(factors, key=factors.get)
        if factors[busy] > factors[idle] * 2:
            # Compare the HCI contribution in isolation via the activity
            # input (stress/current draws are seeded identically per gate).
            hci_busy = scenario.hci.delta_fraction(10.0, factors[busy])
            hci_idle = scenario.hci.delta_fraction(10.0, factors[idle])
            assert hci_busy > hci_idle

    def test_scenario_usable_in_lifetime(self, s27, workload):
        from repro.aging.degradation import aged_copy
        scenario = workload_aging_scenario(s27, workload, seed=3)
        aged = aged_copy(s27, scenario, 10.0)
        from repro.timing.sta import run_sta
        assert run_sta(aged).critical_path > run_sta(s27).critical_path
