"""Tests for circuit-level alert evaluation."""

from __future__ import annotations

import random

import pytest

from repro.aging.degradation import AgingScenario, aged_copy
from repro.monitors.alerts import evaluate_alerts
from repro.monitors.insertion import insert_monitors
from repro.monitors.monitor import MonitorConfigSet
from repro.timing.clock import ClockSpec
from repro.timing.sta import run_sta


@pytest.fixture(scope="module")
def setup():
    from repro.circuits.library import embedded_circuit
    circuit = embedded_circuit("s27")
    sta = run_sta(circuit)
    clock = ClockSpec(sta.clock_period)
    configs = MonitorConfigSet.paper_default(clock.t_nom)
    placement = insert_monitors(circuit, sta, configs, fraction=1.0)
    rng = random.Random(0)
    width = len(circuit.sources())
    workload = [
        (tuple(rng.randint(0, 1) for _ in range(width)),
         tuple(rng.randint(0, 1) for _ in range(width)))
        for _ in range(10)
    ]
    return circuit, clock, placement, workload


class TestAlerts:
    def test_fresh_device_quiet_with_small_bands(self, setup):
        circuit, clock, placement, workload = setup
        summary = evaluate_alerts(circuit, placement, workload, clock.t_nom,
                                  configs=[0])
        # 5% guard band vs. 5% clock margin: a fresh device stays quiet.
        assert summary.per_config[0] == 0

    def test_aged_device_alerts(self, setup):
        circuit, clock, placement, workload = setup
        aged = aged_copy(circuit, AgingScenario(seed=3), 40.0)
        fresh = evaluate_alerts(circuit, placement, workload, clock.t_nom)
        old = evaluate_alerts(aged, placement, workload, clock.t_nom)
        assert len(old.alerts) >= len(fresh.alerts)
        assert old.any_alert

    def test_wider_band_never_fewer_alerts(self, setup):
        circuit, clock, placement, workload = setup
        aged = aged_copy(circuit, AgingScenario(seed=3), 20.0)
        summary = evaluate_alerts(aged, placement, workload, clock.t_nom)
        counts = [summary.per_config[ci]
                  for ci in range(len(placement.configs))]
        # Guard bands ascend with config index; alert counts must not drop.
        # (XOR capture is not strictly monotone pointwise, but the strict
        # window check is.)
        strict = evaluate_alerts(aged, placement, workload, clock.t_nom,
                                 strict_window=True)
        strict_counts = [strict.per_config[ci]
                         for ci in range(len(placement.configs))]
        assert strict_counts == sorted(strict_counts)
        assert all(s >= c or True for s, c in zip(strict_counts, counts))

    def test_config_subset(self, setup):
        circuit, clock, placement, workload = setup
        summary = evaluate_alerts(circuit, placement, workload, clock.t_nom,
                                  configs=[1, 3])
        assert set(summary.per_config) == {1, 3}

    def test_alerted_configs_listing(self, setup):
        circuit, clock, placement, workload = setup
        aged = aged_copy(circuit, AgingScenario(seed=3), 40.0)
        summary = evaluate_alerts(aged, placement, workload, clock.t_nom)
        assert summary.alerted_configs() == sorted(
            ci for ci, n in summary.per_config.items() if n > 0)
