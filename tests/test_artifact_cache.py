"""Tests for the persistent on-disk flow-artifact cache."""

from __future__ import annotations

from pathlib import Path

from repro.core.config import FlowConfig
from repro.experiments.artifact_cache import (
    CACHE_VERSION,
    ArtifactCache,
    StageCache,
    cache_enabled,
    config_fingerprint,
    default_cache_dir,
    flow_key,
)


def _key(**overrides):
    kwargs = dict(circuit_name="s27", scale=1.0, config=FlowConfig(),
                  with_schedules=True, with_coverage_schedules=False)
    kwargs.update(overrides)
    name = kwargs.pop("circuit_name")
    scale = kwargs.pop("scale")
    config = kwargs.pop("config")
    return flow_key(name, scale, config, **kwargs)


class TestFlowKey:
    def test_deterministic(self):
        assert _key() == _key()

    def test_job_counts_do_not_change_key(self):
        assert _key(config=FlowConfig(simulation_jobs=8,
                                      schedule_jobs=4)) == _key()

    def test_semantic_fields_change_key(self):
        assert _key(config=FlowConfig(atpg_seed=9)) != _key()
        assert _key(config=FlowConfig(
            engines=(("atpg", "reference"),))) != _key()
        assert _key(scale=0.5) != _key()
        assert _key(circuit_name="c17") != _key()
        assert _key(with_schedules=False) != _key()
        assert _key(with_coverage_schedules=True) != _key()

    def test_fingerprint_excludes_job_knobs(self):
        fp = config_fingerprint(FlowConfig(simulation_jobs=8))
        assert "simulation_jobs" not in fp
        assert "schedule_jobs" not in fp
        assert ["atpg", "matrix"] in fp["engines"]
        assert ["simulation", "wordwave"] in fp["engines"]


class TestEnvironment:
    def test_cache_enabled_default_and_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLOW_CACHE", raising=False)
        assert cache_enabled()
        for off in ("0", "off", "no"):
            monkeypatch.setenv("REPRO_FLOW_CACHE", off)
            assert not cache_enabled()
        monkeypatch.setenv("REPRO_FLOW_CACHE", "1")
        assert cache_enabled()

    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "x"))
        assert default_cache_dir() == tmp_path / "x"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir() == Path(
            default_cache_dir()).resolve()  # repo-root default is absolute


class TestArtifactCache:
    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = _key()
        assert cache.load(key) is None
        cache.store(key, {"rows": [1, 2, 3]})
        assert cache.load(key) == {"rows": [1, 2, 3]}

    def test_entries_are_sharded_by_prefix(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = _key()
        cache.store(key, "payload")
        assert (tmp_path / key[:2] / f"{key}.pkl").exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = _key()
        cache.store(key, "payload")
        (tmp_path / key[:2] / f"{key}.pkl").write_bytes(b"\x80garbage")
        assert cache.load(key) is None

    def test_store_is_best_effort(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory")
        cache = ArtifactCache(target / "sub")  # mkdir will fail
        cache.store(_key(), "payload")  # must not raise
        assert cache.load(_key()) is None

    def test_no_stray_tmp_files_after_store(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store(_key(), list(range(100)))
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []


class TestStageCache:
    def test_namespaced_by_global_version(self, tmp_path):
        cache = StageCache(tmp_path)
        assert cache.root == tmp_path / f"v{CACHE_VERSION}"
        key = _key()
        cache.store(key, "artifact")
        assert (tmp_path / f"v{CACHE_VERSION}" / key[:2]
                / f"{key}.pkl").exists()
        assert cache.load(key) == "artifact"

    def test_version_bump_orphans_old_entries(self, tmp_path):
        key = _key()
        ArtifactCache(tmp_path / "v0").store(key, "stale")
        assert StageCache(tmp_path).load(key) is None

    def test_default_root_follows_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert StageCache().root == tmp_path / "env" / f"v{CACHE_VERSION}"
