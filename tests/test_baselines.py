"""Tests for the Table II baseline schedules."""

from __future__ import annotations

import pytest

from repro.scheduling.baselines import (
    conventional_schedule,
    conventional_targets,
    heuristic_schedule,
    proposed_schedule,
)


class TestConventional:
    def test_targets_exclude_at_speed(self, flow_result_small):
        cls = flow_result_small.classification
        targets = conventional_targets(cls)
        assert not targets & cls.at_speed
        assert targets <= cls.conv_detected

    def test_conv_schedule_full_coverage(self, flow_result_small):
        conv = flow_result_small.schedules["conv"]
        assert conv.covered == conv.targets

    def test_greedy_solver_supported(self, flow_result_small):
        sched = conventional_schedule(
            flow_result_small.data, flow_result_small.classification,
            flow_result_small.clock, solver="greedy")
        assert sched.covered == sched.targets


class TestProposedVsHeuristic:
    def test_same_targets(self, flow_result_small):
        heur = flow_result_small.schedules["heur"]
        prop = flow_result_small.schedules["prop"]
        assert heur.targets == prop.targets
        assert heur.targets == frozenset(
            flow_result_small.classification.target)

    def test_ilp_never_more_frequencies(self, flow_result_small):
        heur = flow_result_small.schedules["heur"]
        prop = flow_result_small.schedules["prop"]
        assert prop.num_frequencies <= heur.num_frequencies

    def test_methods_annotated(self, flow_result_small):
        assert flow_result_small.schedules["prop"].method == "ilp"
        assert flow_result_small.schedules["heur"].method == "greedy"

    def test_coverage_parameter_passthrough(self, flow_result_small):
        sched = proposed_schedule(
            flow_result_small.data, flow_result_small.classification,
            flow_result_small.clock, flow_result_small.configs,
            coverage=0.9)
        assert sched.coverage >= 0.9 - 1e-9

    def test_heuristic_coverage_parameter(self, flow_result_small):
        sched = heuristic_schedule(
            flow_result_small.data, flow_result_small.classification,
            flow_result_small.clock, flow_result_small.configs,
            coverage=0.9)
        assert sched.coverage >= 0.9 - 1e-9
