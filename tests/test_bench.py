"""Tests for the ISCAS'89 .bench reader/writer."""

from __future__ import annotations

import pytest

from repro.netlist.bench import BenchParseError, load_bench, parse_bench, save_bench, write_bench
from repro.netlist.circuit import GateKind


class TestParse:
    def test_s27_shape(self, s27):
        assert s27.num_gates == 10
        assert s27.num_ffs == 3
        assert len(s27.inputs) == 4
        assert len(s27.outputs) == 1

    def test_c17_shape(self, c17):
        assert c17.num_gates == 6
        assert c17.num_ffs == 0
        assert all(g.kind in (GateKind.NAND, GateKind.INPUT)
                   for g in c17.gates)

    def test_comments_and_blank_lines(self):
        c = parse_bench("""
        # header comment
        INPUT(a)   # trailing comment

        OUTPUT(y)
        y = NOT(a)
        """)
        assert c.num_gates == 1

    def test_case_insensitive_decls(self):
        c = parse_bench("input(a)\noutput(y)\ny = BUF(a)\n")
        assert len(c.inputs) == 1

    def test_definitions_out_of_order(self):
        c = parse_bench("""
        INPUT(a)
        OUTPUT(y)
        y = AND(w, a)
        w = NOT(a)
        """)
        assert c.num_gates == 2

    def test_alias_functions(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\nw = INV(a)\ny = BUFF(w)\n")
        assert c.gate_by_name("w").kind == GateKind.NOT
        assert c.gate_by_name("y").kind == GateKind.BUF

    def test_unknown_function_raises(self):
        with pytest.raises(BenchParseError, match="unknown function"):
            parse_bench("INPUT(a)\ny = MAJ(a)\n")

    def test_undefined_signal_raises(self):
        with pytest.raises(BenchParseError, match="undefined"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")

    def test_redefinition_raises(self):
        with pytest.raises(BenchParseError, match="redefined"):
            parse_bench("INPUT(a)\ny = NOT(a)\ny = BUF(a)\n")

    def test_input_with_definition_raises(self):
        with pytest.raises(BenchParseError, match="also has"):
            parse_bench("INPUT(a)\na = NOT(a)\n")

    def test_undefined_output_raises(self):
        with pytest.raises(BenchParseError, match="OUTPUT"):
            parse_bench("INPUT(a)\nOUTPUT(nope)\ny = NOT(a)\n")

    def test_combinational_cycle_raises(self):
        with pytest.raises(BenchParseError, match="cycle"):
            parse_bench("INPUT(a)\nx = AND(a, y)\ny = NOT(x)\n")

    def test_sequential_feedback_ok(self):
        c = parse_bench("""
        INPUT(a)
        OUTPUT(q)
        q = DFF(d)
        d = XOR(a, q)
        """)
        assert c.num_ffs == 1

    def test_dff_with_two_inputs_raises(self):
        with pytest.raises(BenchParseError, match="exactly one"):
            parse_bench("INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n")

    def test_garbage_line_raises(self):
        with pytest.raises(BenchParseError, match="cannot parse"):
            parse_bench("INPUT(a)\nthis is not bench\n")


class TestRoundTrip:
    def test_write_parse_identity(self, s27):
        text = write_bench(s27)
        again = parse_bench(text, name="s27rt")
        assert again.num_gates == s27.num_gates
        assert again.num_ffs == s27.num_ffs
        assert len(again.outputs) == len(s27.outputs)
        # Same connectivity by name.
        for g in s27.gates:
            g2 = again.gate_by_name(g.name)
            assert g2.kind == g.kind
            assert tuple(again.gates[s].name for s in g2.fanin) == \
                tuple(s27.gates[s].name for s in g.fanin)

    def test_save_load(self, tmp_path, c17):
        path = tmp_path / "c17.bench"
        save_bench(c17, path)
        again = load_bench(path)
        assert again.name == "c17"
        assert again.num_gates == c17.num_gates

    def test_used_constants_rejected(self):
        from repro.netlist.circuit import Circuit, GateKind
        c = Circuit("consty")
        one = c.add_const("one", 1)
        a = c.add_input("a")
        g = c.add_gate("g", GateKind.AND, [a, one])
        c.mark_output(g)
        c.finalize()
        with pytest.raises(ValueError, match="cannot express constant"):
            write_bench(c)

    def test_dangling_constants_dropped(self):
        from repro.netlist.circuit import Circuit, GateKind
        c = Circuit("consty2")
        c.add_const("one", 1)
        a = c.add_input("a")
        g = c.add_gate("g", GateKind.NOT, [a])
        c.mark_output(g)
        c.finalize()
        text = write_bench(c)
        assert "one" not in text
        assert parse_bench(text).num_gates == 1
