"""Tests for the packed bitset kernels (`repro.utils.bitset`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import bitset
from repro.utils.bitset import (
    dominated_rows,
    is_subset,
    mask_bits,
    masks_to_matrix,
    matrix_bits,
    matrix_to_masks,
    num_words,
    pack_sets,
    popcount,
    row_bits,
    zeros,
)


class TestShapes:
    def test_num_words(self):
        assert num_words(0) == 1
        assert num_words(1) == 1
        assert num_words(64) == 1
        assert num_words(65) == 2
        assert num_words(128) == 2
        assert num_words(129) == 3

    def test_zeros(self):
        m = zeros(3, 70)
        assert m.shape == (3, 2)
        assert m.dtype == np.uint64
        assert not m.any()


class TestPackUnpack:
    def test_roundtrip_small(self):
        sets = [{0, 3, 5}, set(), {63}]
        m = pack_sets(sets, 64)
        assert [set(row_bits(r)) for r in m] == [set(s) for s in sets]

    def test_roundtrip_multiword(self):
        # Bits straddling the 64-bit word boundary must land correctly.
        sets = [{0, 63, 64, 127, 130}, {64}, {129, 130}]
        m = pack_sets(sets, 131)
        assert m.shape == (3, 3)
        assert matrix_bits(m)[0].tolist() == [0, 63, 64, 127, 130]
        assert [set(b) for b in matrix_bits(m)] == [set(s) for s in sets]

    def test_matrix_bits_empty(self):
        m = zeros(0, 10)
        assert matrix_bits(m) == []


class TestPopcount:
    def test_matches_int_bit_count(self):
        sets = [{0, 1, 2}, {5, 64, 100}, set(), set(range(70))]
        m = pack_sets(sets, 101)
        assert popcount(m).tolist() == [3, 3, 0, 70]

    def test_swar_fallback_agrees(self, monkeypatch):
        monkeypatch.setattr(bitset, "_HAS_BITWISE_COUNT", False)
        rng = np.random.default_rng(7)
        m = rng.integers(0, 2**63, size=(8, 3), dtype=np.uint64)
        expected = [sum(int(w).bit_count() for w in row) for row in m]
        assert popcount(m).tolist() == expected


class TestMaskConversions:
    def test_matrix_to_masks_roundtrip(self):
        sets = [{0, 66}, {1, 2, 3}, {127}]
        m = pack_sets(sets, 128)
        masks = matrix_to_masks(m)
        assert [mask_bits(x) for x in masks] == [sorted(s) for s in sets]
        back = masks_to_matrix(masks, 128)
        assert np.array_equal(back, m)

    def test_mask_bits(self):
        assert mask_bits(0) == []
        assert mask_bits(0b1011) == [0, 1, 3]
        assert mask_bits(1 << 200) == [200]


class TestSubsetAndDominance:
    def test_is_subset(self):
        m = pack_sets([{0, 1, 2}, {0, 1}, {3}], 70)
        flags = is_subset(m[1], m)
        assert flags.tolist() == [True, True, False]

    def test_dominated_rows_drops_subsets_and_duplicates(self):
        m = pack_sets([{0, 1, 2}, {0, 1}, {0, 1, 2}, {3}], 64)
        # Scan order = given order: row 1 ⊂ row 0, row 2 == row 0.
        assert dominated_rows(m, [0, 1, 2, 3]) == [0, 3]

    def test_dominated_rows_order_decides_winner(self):
        m = pack_sets([{0, 1}, {0, 1}], 64)
        assert dominated_rows(m, [1, 0]) == [1]
        assert dominated_rows(m, [0, 1]) == [0]

    def test_dominated_rows_empty(self):
        assert dominated_rows(zeros(0, 10), []) == []


bit_sets = st.sets(st.integers(0, 140), max_size=12)


@given(st.lists(bit_sets, min_size=1, max_size=8))
def test_property_pack_mask_roundtrip(sets):
    n_bits = 141
    m = pack_sets(sets, n_bits)
    masks = matrix_to_masks(m)
    for s, mask, bits in zip(sets, masks, matrix_bits(m)):
        assert mask == sum(1 << b for b in s)
        assert set(bits) == s
    assert np.array_equal(masks_to_matrix(masks, n_bits), m)
    assert popcount(m).tolist() == [len(s) for s in sets]


@given(st.lists(bit_sets, min_size=1, max_size=8))
def test_property_dominated_rows_matches_set_semantics(sets):
    m = pack_sets(sets, 141)
    kept = dominated_rows(m, list(range(len(sets))))
    # No kept row is a subset of an earlier-kept row; every dropped row is.
    for pos, idx in enumerate(kept):
        assert not any(sets[idx] <= sets[k] for k in kept[:pos])
    for idx in set(range(len(sets))) - set(kept):
        assert any(sets[idx] <= sets[k] for k in kept if k < idx)
