"""Tests for the standard-cell library model."""

from __future__ import annotations

import pytest

from repro.netlist.cells import CellLibrary, CellSpec, nangate45_like


class TestCellSpec:
    def test_pin_delay_spread(self):
        spec = CellSpec("NAND2_X1", "NAND", 2, base_rise=14, base_fall=11,
                        pin_spread=0.15)
        r0, f0 = spec.pin_delay(0, fanout=1)
        r1, f1 = spec.pin_delay(1, fanout=1)
        assert r1 > r0 and f1 > f0  # later pins are slower

    def test_pin_delay_load(self):
        spec = CellSpec("INV_X1", "NOT", 1, base_rise=10, base_fall=8)
        light = spec.pin_delay(0, fanout=1)
        heavy = spec.pin_delay(0, fanout=5)
        assert heavy[0] > light[0] and heavy[1] > light[1]

    def test_zero_fanout_clamped(self):
        spec = CellSpec("INV_X1", "NOT", 1, base_rise=10, base_fall=8)
        assert spec.pin_delay(0, fanout=0) == spec.pin_delay(0, fanout=1)

    def test_negative_pin_raises(self):
        spec = CellSpec("INV_X1", "NOT", 1, base_rise=10, base_fall=8)
        with pytest.raises(ValueError):
            spec.pin_delay(-1, fanout=1)


class TestLibrary:
    def test_default_library_kinds(self):
        lib = nangate45_like()
        assert lib.kinds() == {"NOT", "BUF", "NAND", "NOR", "AND", "OR",
                               "XOR", "XNOR"}

    def test_choose_smallest_sufficient(self):
        lib = nangate45_like()
        assert lib.choose("NAND", 2).name == "NAND2_X1"
        assert lib.choose("NAND", 3).name == "NAND3_X1"

    def test_choose_missing_raises(self):
        lib = nangate45_like()
        with pytest.raises(KeyError):
            lib.choose("NAND", 9)
        with pytest.raises(KeyError):
            lib.choose("MUX", 2)

    def test_duplicate_add_raises(self):
        lib = CellLibrary("x")
        spec = CellSpec("INV_X1", "NOT", 1, 10, 8)
        lib.add(spec)
        with pytest.raises(ValueError):
            lib.add(spec)

    def test_inverter_is_fastest(self):
        lib = nangate45_like()
        inv = lib.choose("NOT", 1)
        for cell in lib.cells.values():
            if cell.name != inv.name:
                assert cell.base_rise >= inv.base_rise

    def test_xor_slowest_two_input(self):
        lib = nangate45_like()
        xor = lib.choose("XOR", 2)
        for kind in ("NAND", "NOR", "AND", "OR"):
            assert lib.choose(kind, 2).base_rise < xor.base_rise
