"""Tests for the circuit data structure."""

from __future__ import annotations

import pytest

from repro.netlist.cells import nangate45_like
from repro.netlist.circuit import Circuit, GateKind


def build_chain(n: int) -> Circuit:
    c = Circuit("chain")
    prev = c.add_input("in")
    for i in range(n):
        prev = c.add_gate(f"g{i}", GateKind.NOT, [prev])
    c.mark_output(prev)
    return c.finalize()


class TestConstruction:
    def test_duplicate_name_raises(self):
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(ValueError, match="duplicate"):
            c.add_input("a")

    def test_unknown_fanin_raises(self):
        c = Circuit("x")
        with pytest.raises(ValueError, match="unknown fanin"):
            c.add_gate("g", GateKind.NOT, [5])

    def test_arity_checks(self):
        c = Circuit("x")
        a = c.add_input("a")
        with pytest.raises(ValueError):
            c.add_gate("n", GateKind.NOT, [a, a])
        with pytest.raises(ValueError):
            c.add_gate("x1", GateKind.XOR, [a])

    def test_add_gate_rejects_source_kinds(self):
        c = Circuit("x")
        with pytest.raises(ValueError):
            c.add_gate("i", GateKind.INPUT, [])

    def test_unknown_kind_raises(self):
        c = Circuit("x")
        a = c.add_input("a")
        with pytest.raises(ValueError, match="combinational kind"):
            c.add_gate("g", "MAJ", [a])

    def test_structure_frozen_after_finalize(self):
        c = build_chain(2)
        with pytest.raises(RuntimeError):
            c.add_input("late")
        with pytest.raises(RuntimeError):
            c.mark_output(0)

    def test_finalize_idempotent(self):
        c = build_chain(2)
        assert c.finalize() is c

    def test_deferred_dff(self):
        c = Circuit("x")
        a = c.add_input("a")
        ff = c.add_dff("ff")
        g = c.add_gate("g", GateKind.AND, [a, ff])
        c.connect_dff("ff", g)
        c.mark_output(g)
        c.finalize()
        assert c.gates[ff].fanin == (g,)

    def test_unconnected_dff_fails_finalize(self):
        c = Circuit("x")
        c.add_input("a")
        c.add_dff("ff")
        with pytest.raises(ValueError, match="without data"):
            c.finalize()

    def test_connect_dff_twice_raises(self):
        c = Circuit("x")
        a = c.add_input("a")
        c.add_dff("ff")
        c.connect_dff("ff", a)
        with pytest.raises(ValueError, match="already connected"):
            c.connect_dff("ff", a)

    def test_combinational_cycle_detected(self):
        c = Circuit("x")
        a = c.add_input("a")
        g1 = c.add_gate("g1", GateKind.AND, [a, a])
        g2 = c.add_gate("g2", GateKind.OR, [g1, g1])
        # Introduce a cycle by patching fanin directly (parser-level bug sim).
        c.gates[g1].fanin = (a, g2)
        with pytest.raises(ValueError, match="cycle"):
            c.finalize()

    def test_sequential_loop_through_dff_is_fine(self, tiny_circuit):
        assert tiny_circuit.is_finalized


class TestQueries:
    def test_stats(self, tiny_circuit):
        st = tiny_circuit.stats()
        assert st["gates"] == 5
        assert st["ffs"] == 2
        assert st["inputs"] == 3

    def test_topo_order_respects_deps(self, tiny_circuit):
        pos = {idx: i for i, idx in enumerate(tiny_circuit.topo_order)}
        for g in tiny_circuit.gates:
            if g.kind == GateKind.DFF:
                continue
            for src in g.fanin:
                assert pos[src] < pos[g.index]

    def test_levels_monotone(self, tiny_circuit):
        for g in tiny_circuit.gates:
            if GateKind.is_combinational(g.kind):
                assert tiny_circuit.level(g.index) == 1 + max(
                    tiny_circuit.level(s) for s in g.fanin)

    def test_depth_of_chain(self):
        assert build_chain(7).depth == 7

    def test_fanouts(self, tiny_circuit):
        g3 = tiny_circuit.index_of("G3")
        consumers = {tiny_circuit.gates[g].name
                     for g, _pin in tiny_circuit.fanouts(g3)}
        assert consumers == {"G4", "G5"}

    def test_fanout_count_includes_po(self, tiny_circuit):
        f = tiny_circuit.index_of("F")
        assert tiny_circuit.fanout_count(f) == 1  # PO only

    def test_observation_points(self, tiny_circuit):
        ops = tiny_circuit.observation_points()
        kinds = sorted(op.kind for op in ops)
        assert kinds == ["po", "ppo", "ppo"]
        ppo_gates = {tiny_circuit.gates[op.gate].name
                     for op in ops if op.is_pseudo}
        assert ppo_gates == {"G3", "G5"}

    def test_fanout_cone(self, tiny_circuit):
        g1 = tiny_circuit.index_of("G1")
        cone = {tiny_circuit.gates[g].name
                for g in tiny_circuit.fanout_cone(g1)}
        assert cone == {"G3", "G5", "F"}

    def test_fanin_cone(self, tiny_circuit):
        f = tiny_circuit.index_of("F")
        cone = {tiny_circuit.gates[g].name
                for g in tiny_circuit.fanin_cone(f)}
        # Stops at DFF boundaries (G4, G6 included as sources).
        assert "G4" in cone and "A" in cone

    def test_sources(self, tiny_circuit):
        names = {tiny_circuit.gates[s].name for s in tiny_circuit.sources()}
        assert names == {"A", "B", "C", "G4", "G6"}

    def test_cone_queries_memoized(self, tiny_circuit):
        g1 = tiny_circuit.index_of("G1")
        f = tiny_circuit.index_of("F")
        assert tiny_circuit.fanout_cone(g1) is tiny_circuit.fanout_cone(g1)
        assert tiny_circuit.fanin_cone(f) is tiny_circuit.fanin_cone(f)
        assert tiny_circuit.cone_schedule(g1) is tiny_circuit.cone_schedule(g1)

    def test_cone_schedule_topo_sorted(self, tiny_circuit):
        g1 = tiny_circuit.index_of("G1")
        schedule = tiny_circuit.cone_schedule(g1)
        assert set(schedule) == set(tiny_circuit.fanout_cone(g1))
        positions = [tiny_circuit.topo_position(g) for g in schedule]
        assert positions == sorted(positions)

    def test_topo_position_matches_order(self, tiny_circuit):
        for pos, gate in enumerate(tiny_circuit.topo_order):
            assert tiny_circuit.topo_position(gate) == pos

    def test_queries_require_finalize(self):
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(RuntimeError):
            c.topo_order


class TestDelays:
    def test_assign_delays_sets_all_pins(self, tiny_circuit):
        for g in tiny_circuit.gates:
            if GateKind.is_combinational(g.kind):
                assert len(g.pin_delays) == g.arity
                assert all(r > 0 and f > 0 for r, f in g.pin_delays)

    def test_load_dependence(self):
        lib = nangate45_like()
        c = Circuit("fan")
        a = c.add_input("a")
        b = c.add_input("b")
        g = c.add_gate("g", GateKind.NAND, [a, b])
        consumers = [c.add_gate(f"c{i}", GateKind.NOT, [g]) for i in range(4)]
        for x in consumers:
            c.mark_output(x)
        c.finalize(library=lib)
        single = c.gates[consumers[0]]
        loaded = c.gates[g]
        assert loaded.pin_delays[0][0] > single.pin_delays[0][0]

    def test_scale_gate_delays(self, tiny_circuit):
        g = tiny_circuit.gate_by_name("G1")
        before = g.pin_delays
        tiny_circuit.scale_gate_delays({g.index: 2.0})
        assert g.pin_delays[0][0] == pytest.approx(2 * before[0][0])

    def test_min_max_delay(self, tiny_circuit):
        g = tiny_circuit.gate_by_name("G3")
        assert 0 < g.min_delay() <= g.max_delay()
