"""Tests for fault classification (Fig. 4 steps 1-5)."""

from __future__ import annotations

import pytest

from repro.faults.classify import classify_faults, structural_prefilter
from repro.faults.universe import small_delay_fault_universe
from repro.monitors.insertion import insert_monitors
from repro.monitors.monitor import MonitorConfigSet
from repro.timing.clock import ClockSpec
from repro.timing.sta import run_sta
from repro.utils.intervals import EPS


class TestPartition:
    def test_classes_are_disjoint_and_cover(self, flow_result_small):
        cls = flow_result_small.classification
        n = len(cls.data.faults)
        everything = (cls.not_activated | cls.timing_redundant
                      | cls.prop_detected)
        assert everything == set(range(n))
        assert not cls.not_activated & cls.prop_detected
        assert not cls.timing_redundant & cls.prop_detected
        # at_speed, monitor_at_speed, target partition prop_detected.
        assert (cls.at_speed | cls.monitor_at_speed | cls.target
                == cls.prop_detected)
        assert not cls.at_speed & cls.monitor_at_speed
        assert not cls.at_speed & cls.target
        assert not cls.monitor_at_speed & cls.target

    def test_conv_subset_of_prop(self, flow_result_small):
        cls = flow_result_small.classification
        assert cls.conv_detected <= cls.prop_detected

    def test_at_speed_faults_contain_t_nom(self, flow_result_small):
        cls = flow_result_small.classification
        data = flow_result_small.data
        t_nom = flow_result_small.clock.t_nom
        for fi in cls.at_speed:
            assert data.union_all(fi).contains(t_nom)

    def test_monitor_at_speed_needs_config(self, flow_result_small):
        cls = flow_result_small.classification
        data = flow_result_small.data
        clock = flow_result_small.clock
        configs = flow_result_small.configs
        for fi in cls.monitor_at_speed:
            assert not data.union_all(fi).contains(clock.t_nom)
            assert any(data.union_mon(fi).shifted(d).contains(clock.t_nom)
                       for d in configs)

    def test_target_faults_need_fast(self, flow_result_small):
        """Target faults are detectable in the window but not at t_nom."""
        cls = flow_result_small.classification
        data = flow_result_small.data
        clock = flow_result_small.clock
        configs = flow_result_small.configs
        for fi in cls.target:
            rng = data.detection_range(fi, tuple(configs),
                                       clock.t_min, clock.t_nom)
            assert not rng.is_empty
            assert not data.union_all(fi).contains(clock.t_nom)

    def test_timing_redundant_unobservable(self, flow_result_small):
        cls = flow_result_small.classification
        data = flow_result_small.data
        clock = flow_result_small.clock
        configs = flow_result_small.configs
        for fi in cls.timing_redundant:
            rng = data.detection_range(fi, tuple(configs),
                                       clock.t_min, clock.t_nom)
            assert rng.is_empty

    def test_summary_counts(self, flow_result_small):
        cls = flow_result_small.classification
        s = cls.summary()
        assert s["faults"] == len(cls.data.faults)
        assert s["prop"] == len(cls.prop_detected)
        assert (s["at_speed"] + s["monitor_at_speed"] + s["target"]
                == s["prop"])

    def test_gain_percent(self, flow_result_small):
        cls = flow_result_small.classification
        if cls.conv_detected:
            expected = (len(cls.prop_detected) / len(cls.conv_detected)
                        - 1.0) * 100.0
            assert cls.coverage_gain_percent == pytest.approx(expected)


class TestStructuralPrefilter:
    @pytest.fixture()
    def setup(self, small_generated):
        sta = run_sta(small_generated)
        clock = ClockSpec(sta.clock_period)
        configs = MonitorConfigSet.paper_default(clock.t_nom)
        placement = insert_monitors(small_generated, sta, configs)
        faults = small_delay_fault_universe(small_generated)
        return small_generated, sta, clock, configs, placement, faults

    def test_partition_complete(self, setup):
        circuit, sta, clock, configs, placement, faults = setup
        res = structural_prefilter(circuit, sta, faults, clock, configs,
                                   placement.monitored_gates)
        assert (len(res.at_speed) + len(res.redundant) + len(res.remaining)
                == len(faults))

    def test_at_speed_have_small_site_slack(self, setup):
        circuit, sta, clock, configs, placement, faults = setup
        res = structural_prefilter(circuit, sta, faults, clock, configs,
                                   placement.monitored_gates)
        for fault in res.at_speed:
            gate = fault.site.gate
            g = circuit.gates[gate]
            if fault.site.is_output_pin:
                arr = sta.arrival_max[gate]
            else:
                rise, fall = g.pin_delays[fault.site.pin]
                arr = (sta.arrival_max[g.fanin[fault.site.pin]]
                       + max(rise, fall))
            slack = clock.t_nom - (arr + sta._downstream_max[gate])
            assert fault.delta > slack - EPS

    @staticmethod
    def _site_latest(circuit, sta, fault):
        gate = fault.site.gate
        g = circuit.gates[gate]
        if fault.site.is_output_pin:
            arr = sta.arrival_max[gate]
        else:
            rise, fall = g.pin_delays[fault.site.pin]
            arr = (sta.arrival_max[g.fanin[fault.site.pin]]
                   + max(rise, fall))
        return arr + sta._downstream_max[gate] + fault.delta

    def test_redundant_effects_below_window(self, setup):
        circuit, sta, clock, configs, placement, faults = setup
        res = structural_prefilter(circuit, sta, faults, clock, configs,
                                   placement.monitored_gates)
        for fault in res.redundant:
            assert self._site_latest(circuit, sta, fault) < clock.t_min

    def test_prefilter_is_sound_wrt_simulation(self, flow_result_small):
        """Nothing the simulation can detect in the FAST window was
        structurally discarded: target faults all come from `remaining`."""
        # flow ran with the prefilter on; every simulated fault is from
        # `remaining`, so targets exist => prefilter did not over-prune.
        assert flow_result_small.prefilter is not None
        assert len(flow_result_small.classification.target) > 0

    def test_monitored_cone_rescues_shiftable_faults(self, setup):
        """Faults below the window but observed by a monitor must be kept
        when the largest delay can lift them in."""
        circuit, sta, clock, configs, placement, faults = setup
        res = structural_prefilter(circuit, sta, faults, clock, configs,
                                   placement.monitored_gates)
        for fault in res.remaining:
            latest = self._site_latest(circuit, sta, fault)
            if latest < clock.t_min - EPS:
                cone = circuit.fanout_cone(fault.site.gate) | {fault.site.gate}
                assert cone & placement.monitored_gates
                assert latest + configs.largest >= clock.t_min - EPS
