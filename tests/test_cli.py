"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_flow_defaults(self):
        args = build_parser().parse_args(["flow", "s27"])
        assert args.fast_ratio == 3.0
        assert args.monitor_fraction == 0.25

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_flow_on_embedded(self, capsys):
        rc = main(["flow", "s27", "--show-schedule"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HDF coverage" in out
        assert "Schedule optimization" in out
        assert "pattern #" in out

    def test_flow_on_bench_file(self, tmp_path, capsys, s27):
        from repro.netlist.bench import save_bench
        path = tmp_path / "mine.bench"
        save_bench(s27, path)
        assert main(["flow", str(path), "--pattern-cap", "6"]) == 0
        assert "HDF coverage" in capsys.readouterr().out

    def test_flow_unknown_circuit(self):
        with pytest.raises(SystemExit, match="cannot resolve"):
            main(["flow", "not_a_circuit"])

    def test_fig3(self, capsys):
        assert main(["fig3", "s27", "--pattern-cap", "6"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "conv_%" in out

    def test_aging(self, capsys):
        assert main(["aging", "s27", "--marginal", "1", "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "prediction:" in out
        assert "cpl=" in out

    def test_generate_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "gen.bench"
        assert main(["generate", str(out_file), "--gates", "40",
                     "--ffs", "8", "--depth", "6"]) == 0
        assert out_file.exists()
        from repro.netlist.bench import load_bench
        c = load_bench(out_file)
        assert c.num_ffs == 8

    def test_flow_export(self, tmp_path, capsys):
        out = tmp_path / "sched.json"
        rc = main(["flow", "s27", "--export", str(out)])
        assert rc == 0
        assert out.exists()
        assert out.with_suffix(".fast").exists()
        from repro.scheduling.export import load_schedule
        sched = load_schedule(out)
        assert sched.num_frequencies >= 1

    def test_tables_small_subset(self, capsys):
        assert main(["tables", "--suite", "s9234", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "Table III" not in out

    def test_tables_with_coverage_sweep(self, capsys):
        assert main(["tables", "--suite", "s9234", "--scale", "0.3",
                     "--table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "F_99" in out

    def test_bench_missing_baselines(self, tmp_path, capsys):
        rc = main(["bench", "--root", str(tmp_path)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "BENCH_detection.json" in err
        assert "BENCH_schedule.json" in err

    def test_bench_table(self, tmp_path, monkeypatch, capsys):
        # Synthetic baselines + stubbed measurement keep this test fast;
        # the real workloads are exercised by benchmarks/ and pytest -m perf.
        import json

        import repro.cli as cli
        import repro.experiments.runner as runner

        baseline = {"profile": "quick",
                    "circuits": {"s9234": {"total_s": 0.1},
                                 "s13207": {"total_s": 0.2}}}
        (tmp_path / "BENCH_detection.json").write_text(json.dumps(baseline))
        (tmp_path / "BENCH_schedule.json").write_text(json.dumps(baseline))
        monkeypatch.setattr(runner, "run_suite",
                            lambda cfg: {n: object() for n in cfg.names})
        monkeypatch.setattr(
            cli, "_bench_detection_engines",
            lambda res: {"reference": 0.6, "incremental": 0.3,
                         "wordwave": 0.15})
        monkeypatch.setattr(cli, "_bench_schedule_current", lambda res: 0.1)

        rc = main(["bench", "--root", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "current vs committed" in out
        assert out.count("total") == 2          # one summary row per stage
        # detection: 0.15s vs 0.1s committed -> +50%
        assert "50.0" in out
        # the per-engine delta table accompanies the detection stage
        assert "reference vs incremental vs wordwave" in out
        assert "speedup_vs_inc" in out
        # schedule stage can be selected alone
        assert main(["bench", "--root", str(tmp_path),
                     "--stage", "schedule"]) == 0
        out = capsys.readouterr().out
        assert "detection" not in out
        # --stage simulation is an alias for the detection workload
        assert main(["bench", "--root", str(tmp_path),
                     "--stage", "simulation"]) == 0
        out = capsys.readouterr().out
        assert "wordwave_s" in out


class TestSuiteCommand:
    def test_suite_parser_defaults(self):
        args = build_parser().parse_args(["suite"])
        assert args.workers == 1
        assert args.profile == "quick"
        assert args.claim_ttl is None

    def test_suite_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "--profile", "nope"])

    def test_suite_sharded_run(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FLOW_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(["suite", "--profile", "synth", "--count", "2",
                   "--scale", "0.25", "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 circuits" in out
        assert "workers=2" in out
        assert "computed=12" in out
        # Re-invocation resumes entirely from the shared stage store.
        assert main(["suite", "--profile", "synth", "--count", "2",
                     "--scale", "0.25", "--workers", "2"]) == 0
        assert "computed=0" in capsys.readouterr().out

    def test_suite_errors_without_store(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FLOW_CACHE", "0")
        rc = main(["suite", "--profile", "synth", "--count", "1"])
        assert rc == 1
        assert "stage store" in capsys.readouterr().err

    def test_bench_suite_stage(self, tmp_path, monkeypatch, capsys):
        import json

        baseline = {"profile": "quick", "host_cpus": 1,
                    "smoke": {"payload": "real", "circuits": 1,
                              "scale": 0.25, "names": ["syn0002"],
                              "serial_inprocess_s": 0.1,
                              "workers": {"1": 0.1}, "parity": True}}
        (tmp_path / "BENCH_suite.json").write_text(json.dumps(baseline))

        class _Report:
            wall_s = 0.2
        monkeypatch.setattr(
            "repro.experiments.shard.run_suite_sharded",
            lambda cfg, workers, store: _Report())
        rc = main(["bench", "--root", str(tmp_path), "--stage", "suite"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "suite" in out
        assert "smoke w=1" in out
        assert "100.0" in out  # 0.2s vs 0.1s committed -> +100%


class TestFleetCommands:
    def test_fleet_parser_defaults(self):
        args = build_parser().parse_args(["fleet", "s27"])
        assert args.devices == 1024
        assert args.jobs == 1
        assert args.engine is None
        assert args.scenario is None

    def test_fleet_summary(self, capsys):
        rc = main(["fleet", "s27", "--devices", "64", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine=vectorized" in out
        assert "detection_rate=" in out
        assert "Fleet distributions" in out
        assert "wearout_failure_time" in out

    def test_fleet_json_and_engine(self, capsys):
        import json
        rc = main(["fleet", "s27", "--devices", "32", "--json",
                   "--engine", "reference", "--no-cache"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["engine"] == "reference"
        assert data["devices"] == 32
        assert data["metrics"]["devices"] == 32

    def test_fleet_and_aging_share_the_scenario_schema(self, tmp_path,
                                                       capsys):
        from repro.aging.scenario import ScenarioSpec
        path = tmp_path / "spec.json"
        ScenarioSpec(seed=5, clock_margin=1.2,
                     checkpoints=(0.5, 1.0, 2.0, 4.0)).save(path)
        assert main(["aging", "s27", "--scenario", str(path)]) == 0
        out = capsys.readouterr().out
        # the spec's four checkpoints drive the lifetime sweep
        assert out.count("t=") == 4
        assert main(["fleet", "s27", "--scenario", str(path),
                     "--devices", "32", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert ScenarioSpec.load(path).fingerprint() in out

    def test_fleet_seed_override(self, capsys):
        import json
        outs = []
        for seed in ("1", "2"):
            assert main(["fleet", "s27", "--devices", "32", "--seed", seed,
                         "--json", "--no-cache"]) == 0
            outs.append(json.loads(capsys.readouterr().out))
        assert outs[0] != outs[1]
