"""Tests for clocking helpers."""

from __future__ import annotations

import pytest

from repro.timing.clock import ClockSpec, application_time


class TestClockSpec:
    def test_window(self):
        clk = ClockSpec(t_nom=300.0, fast_ratio=3.0)
        assert clk.t_min == pytest.approx(100.0)
        assert clk.f_nom == pytest.approx(1 / 300.0)
        assert clk.f_max == pytest.approx(3 / 300.0)

    def test_in_window(self):
        clk = ClockSpec(t_nom=300.0)
        assert clk.in_window(150.0)
        assert clk.in_window(100.0) and clk.in_window(300.0)
        assert not clk.in_window(99.0)
        assert not clk.in_window(301.0)

    def test_frequency_of(self):
        assert ClockSpec(100.0).frequency_of(50.0) == pytest.approx(0.02)

    def test_with_ratio(self):
        clk = ClockSpec(300.0, 3.0).with_ratio(2.0)
        assert clk.t_min == pytest.approx(150.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockSpec(0.0)
        with pytest.raises(ValueError):
            ClockSpec(100.0, fast_ratio=0.5)


class TestApplicationTime:
    def test_frequencies_dominate(self):
        few_freqs = application_time(2, 500)
        many_freqs = application_time(10, 500)
        assert many_freqs - few_freqs == pytest.approx(8 * 2000.0)

    def test_zero(self):
        assert application_time(0, 0) == 0.0

    def test_custom_relock(self):
        assert application_time(3, 10, relock_cost=100.0) == 310.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            application_time(-1, 0)
