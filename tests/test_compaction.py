"""Tests for static test-set compaction."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.atpg.compaction import merge_compatible, reverse_order_drop
from repro.atpg.patterns import PatternPair, TestSet
from repro.simulation.logic import X


class TestReverseOrderDrop:
    def test_keeps_all_when_each_unique(self):
        # Fault i detected only by pattern i.
        masks = [1 << i for i in range(4)]
        assert reverse_order_drop(4, masks) == [0, 1, 2, 3]

    def test_drops_redundant_earlier_pattern(self):
        # Pattern 1 detects both faults; pattern 0 is redundant.
        masks = [0b11, 0b10]
        assert reverse_order_drop(2, masks) == [1]

    def test_prefers_later_patterns(self):
        # Everything detected by the last pattern.
        masks = [0b111, 0b101, 0b100]
        assert reverse_order_drop(3, masks) == [2]

    def test_empty_masks_ignored(self):
        assert reverse_order_drop(3, [0, 0]) == []

    def test_empty_mask_list(self):
        assert reverse_order_drop(5, []) == []

    def test_zero_patterns(self):
        assert reverse_order_drop(0, [0b1]) == []

    def test_single_pattern(self):
        assert reverse_order_drop(1, [1, 1, 1]) == [0]

    def test_mask_bits_beyond_pattern_count_ignored(self):
        # Stray bits above num_patterns must not keep a pattern alive.
        assert reverse_order_drop(2, [0b100]) == []
        assert reverse_order_drop(2, [0b101, 0b10]) == [0, 1]

    def test_multiword_masks(self):
        # >64 patterns exercises the multi-word uint64 transpose path.
        n = 130
        masks = [1 << i for i in range(n)]           # every pattern essential
        assert reverse_order_drop(n, masks) == list(range(n))
        # One fault detected everywhere: only the last pattern survives.
        assert reverse_order_drop(n, [(1 << n) - 1]) == [n - 1]

    @given(st.lists(st.integers(min_value=1, max_value=2**130 - 1),
                    max_size=12))
    def test_multiword_kept_subset_covers_everything(self, masks):
        kept = reverse_order_drop(130, masks)
        kept_bits = sum(1 << p for p in kept)
        for m in masks:
            assert m & kept_bits, "a fault lost its detecting pattern"

    @given(st.lists(st.integers(min_value=1, max_value=2**10 - 1), max_size=20))
    def test_kept_subset_covers_everything(self, masks):
        kept = reverse_order_drop(10, masks)
        kept_bits = sum(1 << p for p in kept)
        for m in masks:
            assert m & kept_bits, "a fault lost its detecting pattern"

    @given(st.lists(st.integers(min_value=1, max_value=2**10 - 1), max_size=20))
    def test_every_kept_pattern_is_essential_in_order(self, masks):
        kept = reverse_order_drop(10, masks)
        # Dropping the earliest kept pattern must lose some fault whose
        # remaining detectors are all earlier (reverse-order property).
        assert kept == sorted(kept)


class TestMergeCompatible:
    def circuit(self, s27):
        return s27

    def test_merges_disjoint_care_bits(self, s27):
        width = len(s27.sources())
        a = PatternPair((0,) + (X,) * (width - 1), (X,) * width)
        b = PatternPair((X, 1) + (X,) * (width - 2), (X,) * width)
        ts = TestSet(s27, [a, b])
        merged = merge_compatible(ts)
        assert len(merged) == 1
        assert merged[0].launch[0] == 0 and merged[0].launch[1] == 1

    def test_conflicting_patterns_kept_separate(self, s27):
        width = len(s27.sources())
        a = PatternPair((0,) * width, (0,) * width)
        b = PatternPair((1,) * width, (0,) * width)
        merged = merge_compatible(TestSet(s27, [a, b]))
        assert len(merged) == 2

    def test_empty_test_set(self, s27):
        assert list(merge_compatible(TestSet(s27, []))) == []

    def test_single_pattern_untouched(self, s27):
        width = len(s27.sources())
        p = PatternPair((X,) * width, (0,) * width)
        merged = merge_compatible(TestSet(s27, [p]))
        assert len(merged) == 1
        assert merged[0].launch == p.launch
        assert merged[0].capture == p.capture

    def test_fully_specified_untouched(self, s27):
        from repro.atpg.patterns import random_test_set
        ts = random_test_set(s27, 6, seed=1)
        merged = merge_compatible(ts)
        assert len(merged) == 6

    def test_merging_preserves_detection(self, s27):
        """Merged test sets must detect at least the faults the originals
        detected (care bits are preserved; X fills are free)."""
        from repro.atpg.transition import (
            detect_masks,
            generate_transition_tests,
            transition_fault_list,
        )
        from repro.simulation.parallel_sim import BitParallelSimulator
        res = generate_transition_tests(s27, seed=5, compact=False)
        merged = merge_compatible(res.test_set)
        sim = BitParallelSimulator(s27)
        faults = transition_fault_list(s27)
        orig_masks = detect_masks(s27, sim, res.test_set, faults, seed=5)
        merged_masks = detect_masks(s27, sim, merged, faults, seed=5)
        orig_detected = {f for f, m in orig_masks.items() if m}
        merged_detected = {f for f, m in merged_masks.items() if m}
        # Merging fills don't-cares identically (same seed), so detection
        # from care bits survives; random-fill luck may add or drop a few
        # marginal detections — require near-complete preservation.
        missing = orig_detected - merged_detected
        assert len(missing) <= max(2, len(orig_detected) // 20)
