"""Tests for the monitor hardware cost model."""

from __future__ import annotations

import pytest

from repro.monitors.cost import (
    GE_FLIP_FLOP,
    GE_XOR2,
    circuit_gate_equivalents,
    monitor_gate_equivalents,
    placement_cost,
)
from repro.monitors.insertion import insert_monitors
from repro.monitors.monitor import MonitorConfigSet
from repro.timing.sta import run_sta


@pytest.fixture()
def placements(small_generated):
    sta = run_sta(small_generated)
    configs = MonitorConfigSet.paper_default(sta.clock_period)
    return {
        frac: insert_monitors(small_generated, sta, configs, fraction=frac)
        for frac in (0.25, 1.0)
    }


class TestCircuitArea:
    def test_positive_and_scales_with_size(self, s27, small_generated):
        assert 0 < circuit_gate_equivalents(s27) < \
            circuit_gate_equivalents(small_generated)

    def test_includes_flip_flops(self, s27):
        total = circuit_gate_equivalents(s27)
        assert total >= s27.num_ffs * GE_FLIP_FLOP

    def test_wide_gates_cost_more(self):
        from repro.netlist.circuit import Circuit, GateKind
        def area(n):
            c = Circuit(f"w{n}")
            ins = [c.add_input(f"i{k}") for k in range(n)]
            g = c.add_gate("g", GateKind.NAND, ins)
            c.mark_output(g)
            return circuit_gate_equivalents(c.finalize())
        assert area(4) > area(2)


class TestMonitorArea:
    def test_components_counted(self, placements):
        p = placements[0.25]
        ge = monitor_gate_equivalents(p)
        assert ge > GE_FLIP_FLOP + GE_XOR2  # MUX and delay lines on top

    def test_more_configs_cost_more(self, small_generated):
        sta = run_sta(small_generated)
        small = insert_monitors(small_generated, sta,
                                MonitorConfigSet((10.0,)))
        large = insert_monitors(small_generated, sta,
                                MonitorConfigSet((10.0, 20.0, 40.0, 100.0)))
        assert monitor_gate_equivalents(large) > \
            monitor_gate_equivalents(small)

    def test_longer_delays_cost_more(self, small_generated):
        sta = run_sta(small_generated)
        short = insert_monitors(small_generated, sta,
                                MonitorConfigSet((5.0,)))
        long = insert_monitors(small_generated, sta,
                               MonitorConfigSet((100.0,)))
        assert monitor_gate_equivalents(long) > \
            monitor_gate_equivalents(short)


class TestPlacementCost:
    def test_overhead_scales_with_fraction(self, placements):
        quarter = placement_cost(placements[0.25])
        full = placement_cost(placements[1.0])
        assert full.total_ge > quarter.total_ge
        assert full.overhead_percent > quarter.overhead_percent

    def test_overhead_shrinks_with_logic_to_ff_ratio(self):
        """Monitor count scales with the FF count while circuit area scales
        with the gate count, so logic-rich designs (high gates-per-FF, the
        norm in real circuits) pay relatively less — the regime that makes
        monitor reuse attractive."""
        from repro.circuits.generators import CircuitProfile, generate_circuit
        def overhead(n_gates):
            profile = CircuitProfile(
                name=f"r{n_gates}", n_gates=n_gates, n_ffs=12, n_inputs=10,
                n_outputs=4, depth=8, seed=4, endpoint_side_gates=0)
            c = generate_circuit(profile)
            sta = run_sta(c)
            configs = MonitorConfigSet.paper_default(sta.clock_period)
            placement = insert_monitors(c, sta, configs, fraction=0.25)
            return placement_cost(placement).overhead_percent
        lean, rich = overhead(60), overhead(300)
        assert 0.0 < rich < lean

    def test_zero_monitors_zero_cost(self, small_generated):
        sta = run_sta(small_generated)
        configs = MonitorConfigSet.paper_default(sta.clock_period)
        empty = insert_monitors(small_generated, sta, configs, fraction=0.0)
        cost = placement_cost(empty)
        assert cost.total_ge == 0.0
        assert cost.overhead_percent == 0.0
