"""Tests for the D-algorithm and the PODEM cross-check."""

from __future__ import annotations

import random

import pytest

from repro.atpg.dalg import DAlgorithm, cross_check_testability
from repro.faults.models import FaultSite, StuckAtFault
from repro.faults.universe import fault_sites
from repro.netlist.bench import parse_bench
from repro.simulation.parallel_sim import BitParallelSimulator


def verify(circuit, fault, assignment, seed=0) -> bool:
    rng = random.Random(seed)
    srcs = circuit.sources()
    vec = tuple(assignment.get(s, rng.randint(0, 1)) for s in srcs)
    sim = BitParallelSimulator(circuit)
    words, width = sim.pack_vectors([vec])
    good = sim.simulate(words, width)
    return sim.stuck_at_detect_mask(good, fault, width) == 1


def output_faults(circuit):
    return [StuckAtFault(s, v) for s in fault_sites(circuit)
            if s.is_output_pin for v in (0, 1)]


class TestDalg:
    def test_all_c17_output_faults_found_and_valid(self, c17):
        dalg = DAlgorithm(c17, seed=1)
        for fault in output_faults(c17):
            assignment = dalg.generate(fault)
            assert assignment is not None, fault.describe(c17)
            assert verify(c17, fault, assignment), fault.describe(c17)

    def test_s27_tests_simulation_valid(self, s27):
        dalg = DAlgorithm(s27, seed=1)
        found = 0
        for fault in output_faults(s27):
            assignment = dalg.generate(fault)
            if assignment is None:
                continue
            found += 1
            assert verify(s27, fault, assignment), fault.describe(s27)
        assert found >= 15  # s27 has 20 output-pin stuck-at faults

    def test_untestable_constant_output(self):
        c = parse_bench("""
        INPUT(a)
        OUTPUT(y)
        n = NOT(a)
        y = OR(a, n)
        """, name="const")
        dalg = DAlgorithm(c, seed=0)
        fault = StuckAtFault(FaultSite(c.index_of("y")), 1)
        assert dalg.generate(fault) is None
        assert not dalg.stats.aborted

    def test_input_pin_fault_rejected(self, c17):
        dalg = DAlgorithm(c17, seed=0)
        with pytest.raises(ValueError, match="output-pin"):
            dalg.generate(StuckAtFault(FaultSite(c17.index_of("N22"), 0), 0))

    def test_stats_populated(self, c17):
        dalg = DAlgorithm(c17, seed=0)
        dalg.generate(StuckAtFault(FaultSite(c17.index_of("N22")), 0))
        assert dalg.stats.decisions > 0

    def test_deterministic(self, s27):
        a = DAlgorithm(s27, seed=5)
        b = DAlgorithm(s27, seed=5)
        fault = output_faults(s27)[3]
        assert a.generate(fault) == b.generate(fault)


class TestCrossCheck:
    @pytest.mark.parametrize("name", ["c17", "s27"])
    def test_embedded_circuits_fully_agree(self, name, c17, s27):
        circuit = {"c17": c17, "s27": s27}[name]
        result = cross_check_testability(circuit, output_faults(circuit))
        assert result["podem_miss"] == 0
        assert result["dalg_miss"] == 0
        assert result["agree"] > 0

    @pytest.mark.parametrize("seed", [0, 1, 3, 5])
    def test_generated_circuits_podem_never_misses(self, seed):
        """The hard property: PODEM (the flow's engine) must never prove a
        D-alg-testable fault untestable.  D-alg misses are tolerated (its
        J-frontier is deliberately simplified) but must stay rare."""
        from repro.circuits.generators import CircuitProfile, generate_circuit
        circuit = generate_circuit(CircuitProfile(
            name=f"cc{seed}", n_gates=40, n_ffs=8, n_inputs=6, n_outputs=3,
            depth=6, seed=seed, long_edge_prob=0.5))
        result = cross_check_testability(circuit, output_faults(circuit))
        assert result["podem_miss"] == 0, result
        assert result["dalg_miss"] <= max(3, result["agree"] // 20), result
