"""Tests for the aging degradation models."""

from __future__ import annotations

import pytest

from repro.aging.degradation import AgingScenario, BtiModel, EmModel, HciModel, aged_copy


class TestBti:
    def test_monotone_in_time(self):
        m = BtiModel()
        values = [m.delta_fraction(t) for t in (0.5, 1, 2, 5, 10)]
        assert values == sorted(values)

    def test_zero_at_start(self):
        assert BtiModel().delta_fraction(0.0) == 0.0
        assert BtiModel().delta_fraction(-1.0) == 0.0

    def test_stress_scales(self):
        m = BtiModel()
        assert m.delta_fraction(4.0, stress=2.0) > m.delta_fraction(4.0, 1.0)

    def test_power_law_exponent(self):
        m = BtiModel(amplitude=1.0, exponent=0.5)
        assert m.delta_fraction(4.0) == pytest.approx(2.0)


class TestHci:
    def test_activity_zero_no_degradation(self):
        assert HciModel().delta_fraction(10.0, activity=0.0) == 0.0

    def test_monotone(self):
        m = HciModel()
        assert m.delta_fraction(9.0) > m.delta_fraction(1.0)


class TestEm:
    def test_silent_before_onset(self):
        m = EmModel(rate=0.01, onset=5.0)
        assert m.delta_fraction(4.9) == 0.0
        assert m.delta_fraction(6.0) > 0.0

    def test_linear_after_onset(self):
        m = EmModel(rate=0.01, onset=5.0)
        assert m.delta_fraction(7.0) == pytest.approx(0.02)


class TestScenario:
    def test_deterministic_per_seed(self):
        a = AgingScenario(seed=3)
        b = AgingScenario(seed=3)
        assert a.delay_factor(17, 5.0) == b.delay_factor(17, 5.0)

    def test_seeds_differ(self):
        a = AgingScenario(seed=1)
        b = AgingScenario(seed=2)
        factors_a = [a.delay_factor(g, 5.0) for g in range(20)]
        factors_b = [b.delay_factor(g, 5.0) for g in range(20)]
        assert factors_a != factors_b

    def test_factor_at_least_one(self):
        s = AgingScenario(seed=0)
        for g in range(30):
            for t in (0.0, 1.0, 10.0):
                assert s.delay_factor(g, t) >= 1.0

    def test_monotone_over_lifetime(self):
        s = AgingScenario(seed=5)
        for g in range(10):
            f = [s.delay_factor(g, t) for t in (0.5, 1, 2, 4, 8)]
            assert f == sorted(f)

    def test_delay_factors_cover_all_gates(self, s27):
        s = AgingScenario(seed=1)
        factors = s.delay_factors(s27, 5.0)
        assert factors.shape == (len(s27.gates),)
        comb = set(s27.combinational_gates())
        for g in range(len(s27.gates)):
            if g in comb:
                assert factors[g] > 1.0
            else:
                assert factors[g] == 1.0

    def test_delay_factors_match_scalar_twin(self, s27):
        s = AgingScenario(seed=1)
        factors = s.delay_factors(s27, 5.0)
        for g in s27.combinational_gates():
            assert factors[g] == s.delay_factor(g, 5.0)


class TestScenarioSpread:
    def test_zero_spread_uniform_factors(self):
        s = AgingScenario(seed=0, stress_spread=0.0)
        factors = {s.delay_factor(g, 5.0) for g in range(10)}
        assert len(factors) == 1

    def test_factor_cache_consistent(self):
        s = AgingScenario(seed=7)
        first = s.delay_factor(3, 2.0)
        second = s.delay_factor(3, 2.0)
        assert first == second

    def test_spread_widens_factor_range(self):
        narrow = AgingScenario(seed=1, stress_spread=0.1)
        wide = AgingScenario(seed=1, stress_spread=0.9)
        def spread(s):
            vals = [s.delay_factor(g, 5.0) for g in range(40)]
            return max(vals) - min(vals)
        assert spread(wide) > spread(narrow)


class TestAgedCopy:
    def test_original_untouched(self, s27):
        before = {g.index: g.pin_delays for g in s27.gates}
        aged = aged_copy(s27, AgingScenario(seed=1), 10.0, name_suffix="@10y")
        assert aged.name == "s27@10y"
        for g in s27.gates:
            assert g.pin_delays == before[g.index]

    def test_aged_delays_grow(self, s27):
        aged = aged_copy(s27, AgingScenario(seed=1), 10.0)
        for g_old, g_new in zip(s27.gates, aged.gates):
            for (r0, f0), (r1, f1) in zip(g_old.pin_delays, g_new.pin_delays):
                assert r1 >= r0 and f1 >= f0

    def test_critical_path_grows(self, s27):
        from repro.timing.sta import run_sta
        aged = aged_copy(s27, AgingScenario(seed=1), 10.0)
        assert run_sta(aged).critical_path > run_sta(s27).critical_path
