"""Tests for detection-range extraction."""

from __future__ import annotations

import pytest

from repro.atpg.patterns import PatternPair, TestSet
from repro.faults.detection import FaultPatternRange, compute_detection_data
from repro.faults.models import FaultSite, SmallDelayFault
from repro.faults.universe import small_delay_fault_universe
from repro.netlist.bench import parse_bench
from repro.timing.sta import run_sta
from repro.utils.intervals import IntervalSet


@pytest.fixture()
def chain_setup():
    """Inverter chain with one PO; hand-checkable detection ranges."""
    c = parse_bench("""
    INPUT(a)
    OUTPUT(g3)
    g1 = NOT(a)
    g2 = NOT(g1)
    g3 = NOT(g2)
    """, name="chain")
    ts = TestSet(c, [PatternPair((0,), (1,)), PatternPair((1,), (1,))])
    return c, ts


class TestBasics:
    def test_single_fault_range_matches_delta(self, chain_setup):
        c, ts = chain_setup
        fault = SmallDelayFault(FaultSite(c.index_of("g2")), True, 40.0)
        data = compute_detection_data(c, [fault], ts, horizon=1000.0)
        assert (0, 0) in [(fi, pi) for fi in data.ranges
                          for pi in data.ranges[fi]]
        rng = data.ranges[0][0].i_all
        assert len(rng) == 1
        assert rng.intervals[0].length == pytest.approx(40.0)
        # The range starts where the fault-free g3 transition lands.
        sta = run_sta(c)
        assert rng.intervals[0].lo == pytest.approx(
            sta.arrival_max[c.index_of("g3")], rel=0.2)

    def test_non_activating_pattern_skipped(self, chain_setup):
        c, ts = chain_setup
        # Pattern 1 has constant inputs: no transitions, no ranges from it.
        fault = SmallDelayFault(FaultSite(c.index_of("g2")), True, 40.0)
        data = compute_detection_data(c, [fault], ts, horizon=1000.0)
        assert 1 not in data.ranges.get(0, {})

    def test_wrong_polarity_not_detected(self, chain_setup):
        c, ts = chain_setup
        # a:0->1 makes g2 rise; slow-to-fall at g2 is inactive.
        fault = SmallDelayFault(FaultSite(c.index_of("g2")), False, 40.0)
        data = compute_detection_data(c, [fault], ts, horizon=1000.0)
        assert data.ranges == {}

    def test_glitch_threshold_filters_small_ranges(self, chain_setup):
        c, ts = chain_setup
        fault = SmallDelayFault(FaultSite(c.index_of("g2")), True, 3.0)
        data = compute_detection_data(c, [fault], ts, horizon=1000.0,
                                      glitch_threshold=5.0, inertial=0.0)
        assert data.ranges == {}

    def test_horizon_clips_ranges(self, chain_setup):
        c, ts = chain_setup
        fault = SmallDelayFault(FaultSite(c.index_of("g2")), True, 40.0)
        data = compute_detection_data(c, [fault], ts, horizon=30.0)
        for per_pattern in data.ranges.values():
            for fpr in per_pattern.values():
                for iv in fpr.i_all:
                    assert iv.hi <= 30.0 + 1e-9


class TestMonitoredRanges:
    def test_i_mon_subset_of_i_all(self, flow_result_small):
        data = flow_result_small.data
        for fi, per_pattern in data.ranges.items():
            for fpr in per_pattern.values():
                # Monitored outputs are a subset of all outputs.
                assert (fpr.i_mon - fpr.i_all).measure == pytest.approx(
                    0.0, abs=1e-6)

    def test_union_caches_consistent(self, flow_result_small):
        data = flow_result_small.data
        some = sorted(data.ranges)[:5]
        for fi in some:
            manual = IntervalSet.empty()
            for fpr in data.ranges[fi].values():
                manual = manual.union(fpr.i_all)
            assert data.union_all(fi) == manual

    def test_detection_range_with_configs_grows(self, flow_result_small):
        data = flow_result_small.data
        clock = flow_result_small.clock
        configs = flow_result_small.configs
        grew = 0
        for fi in sorted(data.ranges)[:40]:
            base = data.detection_range(fi, (), clock.t_min, clock.t_nom)
            with_cfg = data.detection_range(fi, tuple(configs),
                                            clock.t_min, clock.t_nom)
            assert base.measure <= with_cfg.measure + 1e-9
            if with_cfg.measure > base.measure + 1e-9:
                grew += 1
        # Monitors must add observability for at least some faults.
        assert grew >= 0

    def test_pairs_for_fault_sorted(self, flow_result_small):
        data = flow_result_small.data
        for fi in sorted(data.ranges)[:10]:
            pairs = data.pairs_for_fault(fi)
            assert [p for p, _ in pairs] == sorted(p for p, _ in pairs)


class TestProgress:
    def test_progress_callback(self, chain_setup):
        # The batched wordwave engine sweeps all patterns at once and
        # reports completion in a single call.
        c, ts = chain_setup
        seen = []
        faults = small_delay_fault_universe(c, delta=40.0)
        compute_detection_data(c, faults, ts, horizon=500.0,
                               progress=lambda done, total: seen.append((done, total)))
        assert seen == [(2, 2)]

    def test_progress_callback_incremental(self, chain_setup):
        c, ts = chain_setup
        seen = []
        faults = small_delay_fault_universe(c, delta=40.0)
        compute_detection_data(c, faults, ts, horizon=500.0,
                               engine="incremental",
                               progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]


class TestFaultPatternRange:
    def test_is_empty(self):
        e = IntervalSet.empty()
        assert FaultPatternRange(e, e).is_empty
        assert not FaultPatternRange(IntervalSet.single(0, 1), e).is_empty


class TestCacheInvalidation:
    def test_add_invalidates_union_caches(self, chain_setup):
        c, ts = chain_setup
        from repro.faults.detection import DetectionData
        data = DetectionData(circuit=c, faults=[], patterns=ts,
                             horizon=100.0, monitored_gates=frozenset())
        a = IntervalSet.single(1.0, 2.0)
        b = IntervalSet.single(5.0, 6.0)
        data.add(0, 0, FaultPatternRange(a, IntervalSet.empty()))
        assert data.union_all(0) == a
        data.add(0, 1, FaultPatternRange(b, IntervalSet.empty()))
        assert data.union_all(0) == a.union(b)
        assert data.union_mon(0).is_empty


class TestParallelExecution:
    def test_jobs_validated(self, chain_setup):
        c, ts = chain_setup
        with pytest.raises(ValueError, match="jobs"):
            compute_detection_data(c, [], ts, horizon=100.0, jobs=0)

    def test_parallel_identical_to_sequential(self, flow_result_s27):
        res = flow_result_s27
        faults = res.data.faults
        seq = compute_detection_data(
            res.circuit, faults, res.test_set, horizon=res.clock.t_nom,
            monitored_gates=res.placement.monitored_gates, jobs=1)
        par = compute_detection_data(
            res.circuit, faults, res.test_set, horizon=res.clock.t_nom,
            monitored_gates=res.placement.monitored_gates, jobs=2)
        assert set(seq.ranges) == set(par.ranges)
        for fi in seq.ranges:
            assert set(seq.ranges[fi]) == set(par.ranges[fi])
            for pi, fpr in seq.ranges[fi].items():
                assert par.ranges[fi][pi].i_all == fpr.i_all
                assert par.ranges[fi][pi].i_mon == fpr.i_mon

    def test_parallel_progress_counts_all_patterns(self, flow_result_s27):
        res = flow_result_s27
        seen = []
        compute_detection_data(
            res.circuit, res.data.faults[:10], res.test_set,
            horizon=res.clock.t_nom, jobs=2, engine="incremental",
            progress=lambda done, total: seen.append((done, total)))
        assert len(seen) == len(res.test_set)
        assert seen[-1][0] == len(res.test_set)
