"""Golden equivalence of the incremental fault-simulation engine.

The event-driven engine (cone schedules + change-driven propagation +
bit-parallel pre-grading) must produce *bit-identical* ``DetectionData`` to
the retained seed ``"reference"`` engine — same (fault, pattern) keys and
exactly equal interval sets — on real ISCAS circuits, a synthetic generated
circuit, and with don't-care patterns (which disable pre-grading).
"""

from __future__ import annotations

import pytest

from repro.atpg.transition import generate_transition_tests
from repro.faults.detection import (
    ENGINES,
    _pregrade_activation,
    _prepare_reach,
    compute_detection_data,
)
from repro.faults.universe import small_delay_fault_universe
from repro.timing.sta import run_sta


def _workload(circuit, *, seed=3, cap=12, fill=True):
    """A flow-like detection workload: universe, patterns, monitors."""
    faults = small_delay_fault_universe(circuit)
    test_set = generate_transition_tests(circuit, seed=seed).test_set
    if len(test_set) > cap:
        test_set = test_set.subset(range(cap))
    if fill:
        test_set = test_set.filled(seed=seed)
    obs = sorted(op.gate for op in circuit.observation_points())
    monitored = frozenset(obs[::2])
    horizon = run_sta(circuit).clock_period
    return faults, test_set, monitored, horizon


def _run(circuit, faults, test_set, monitored, horizon, **kw):
    return compute_detection_data(
        circuit, faults, test_set, horizon=horizon,
        monitored_gates=monitored, **kw)


def _assert_identical(a, b):
    assert set(a.ranges) == set(b.ranges)
    for fi, per_pattern in a.ranges.items():
        assert set(per_pattern) == set(b.ranges[fi])
        for pi, fpr in per_pattern.items():
            other = b.ranges[fi][pi]
            assert fpr.i_all == other.i_all, (fi, pi)
            assert fpr.i_mon == other.i_mon, (fi, pi)


@pytest.fixture(params=["s27", "c17", "small_generated"])
def golden_circuit(request):
    return request.getfixturevalue(request.param)


class TestGoldenEquivalence:
    def test_engines_bit_identical(self, golden_circuit):
        faults, ts, monitored, horizon = _workload(golden_circuit)
        results = {
            engine: _run(golden_circuit, faults, ts, monitored, horizon,
                         engine=engine)
            for engine in ENGINES
        }
        assert results["incremental"].ranges, "workload detected nothing"
        _assert_identical(results["incremental"], results["reference"])
        _assert_identical(results["wordwave"], results["reference"])

    def test_unknown_engine_rejected(self, s27):
        faults, ts, monitored, horizon = _workload(s27, cap=2)
        with pytest.raises(ValueError, match="unknown engine"):
            _run(s27, faults, ts, monitored, horizon, engine="bogus")


class TestParallelParity:
    def test_sequential_vs_jobs4_identical(self, s27):
        faults, ts, monitored, horizon = _workload(s27)
        seq = _run(s27, faults, ts, monitored, horizon, jobs=1)
        par = _run(s27, faults, ts, monitored, horizon, jobs=4)
        _assert_identical(seq, par)

    def test_progress_sequence_matches_sequential(self, s27):
        # Pinned on the incremental engine: wordwave sweeps all patterns
        # in one batch and reports a single (total, total) call instead.
        faults, ts, monitored, horizon = _workload(s27)
        seen: dict[int, list[tuple[int, int]]] = {}
        for jobs in (1, 4):
            calls: list[tuple[int, int]] = []
            _run(s27, faults, ts, monitored, horizon, jobs=jobs,
                 engine="incremental",
                 progress=lambda done, total: calls.append((done, total)))
            seen[jobs] = calls
        n = len(ts)
        assert seen[1] == [(i + 1, n) for i in range(n)]
        assert seen[4] == seen[1]


class TestPregradeSoundness:
    def test_masks_cover_all_detecting_pairs(self, s27):
        faults, ts, monitored, horizon = _workload(s27)
        faults = list(faults)
        _reach, site_signal = _prepare_reach(s27, faults)
        masks = _pregrade_activation(s27, ts, site_signal)
        assert masks is not None
        data = _run(s27, faults, ts, monitored, horizon)
        # Every pair that produced a range must have survived pre-grading:
        # a cleared bit claims the site is provably quiet for that pattern.
        for fi, per_pattern in data.ranges.items():
            for pi in per_pattern:
                assert masks[fi] & (1 << pi), (fi, pi)

    def test_masks_disabled_with_dont_cares(self, s27):
        # X bits cannot be packed into toggle words: grading must disable
        # itself (the flow fills patterns before simulation, so this guard
        # is defensive).
        from repro.atpg.patterns import PatternPair, TestSet
        from repro.simulation.logic import X

        n = len(s27.sources())
        ts = TestSet(s27, [PatternPair((X,) + (0,) * (n - 1), (1,) * n)])
        assert ts[0].has_dont_cares
        _reach, site_signal = _prepare_reach(s27, list(
            small_delay_fault_universe(s27)))
        assert _pregrade_activation(s27, ts, site_signal) is None


class TestDetectionRangeMemo:
    def test_repeated_query_returns_cached_object(self, flow_result_small):
        data = flow_result_small.data
        clock = flow_result_small.clock
        configs = tuple(flow_result_small.configs.delays)
        fi = next(iter(data.ranges))
        first = data.detection_range(fi, configs, clock.t_min, clock.t_nom)
        again = data.detection_range(fi, configs, clock.t_min, clock.t_nom)
        assert again is first

    def test_add_invalidates_memo(self, flow_result_small):
        import copy

        data = copy.deepcopy(flow_result_small.data)
        clock = flow_result_small.clock
        configs = tuple(flow_result_small.configs.delays)
        fi = next(iter(data.ranges))
        pi, fpr = next(iter(data.ranges[fi].items()))
        before = data.detection_range(fi, configs, clock.t_min, clock.t_nom)
        data.add(fi, pi + 1000, fpr)
        after = data.detection_range(fi, configs, clock.t_min, clock.t_nom)
        assert after is not before  # memo entry was dropped and rebuilt
        # Re-adding an existing range only ever extends the union.
        assert after.union(before) == after
