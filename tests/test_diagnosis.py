"""Tests for failing-signature diagnosis."""

from __future__ import annotations

import pytest

from repro.diagnosis.ranking import diagnose, predicts_failure, resolution
from repro.diagnosis.signature import FailingSignature, Observation, collect_signature


class TestSignature:
    def test_collect_orders_observations(self, flow_result_small):
        fi = sorted(flow_result_small.classification.target)[0]
        fault = flow_result_small.data.faults[fi]
        sig = collect_signature(flow_result_small, fault)
        assert len(sig) == flow_result_small.schedules["prop"].num_entries
        assert sig.observations == sorted(sig.observations)

    def test_target_fault_produces_failures(self, flow_result_small):
        """A target fault fails at least one application of the schedule
        that was built to cover it."""
        for fi in sorted(flow_result_small.classification.target)[:5]:
            fault = flow_result_small.data.faults[fi]
            sig = collect_signature(flow_result_small, fault)
            assert sig.has_failures, fi

    def test_fault_free_device_passes_everything(self, flow_result_small):
        from repro.faults.models import FaultSite, SmallDelayFault
        # A zero-effect fault: delta below the inertial threshold on a
        # non-activated polarity still counts as "no fault" in practice —
        # use an sub-resolution delta instead.
        ghost = SmallDelayFault(FaultSite(
            flow_result_small.circuit.combinational_gates()[0]), True, 1e-9)
        sig = collect_signature(flow_result_small, ghost)
        assert not sig.has_failures

    def test_partition_properties(self):
        sig = FailingSignature([
            Observation(1.0, 0, 0, True),
            Observation(2.0, 1, 0, False),
        ])
        assert len(sig.failing) == 1
        assert len(sig.passing) == 1


class TestDiagnosis:
    @pytest.fixture(scope="class")
    def ranked_for(self, flow_result_small):
        def _run(fault_idx):
            fault = flow_result_small.data.faults[fault_idx]
            sig = collect_signature(flow_result_small, fault)
            return diagnose(flow_result_small.data,
                            flow_result_small.configs, sig,
                            max_results=20)
        return _run

    def test_true_fault_ranked(self, flow_result_small, ranked_for):
        """The injected fault appears in the candidate list, usually at or
        near the top (equivalent faults can tie)."""
        hits = []
        for fi in sorted(flow_result_small.classification.target)[:8]:
            ranked = ranked_for(fi)
            rank = resolution(ranked, fi)
            hits.append(rank)
        found = [r for r in hits if r is not None]
        assert len(found) >= len(hits) // 2
        assert min(found) <= 3

    def test_top_candidate_explains_all_failures(self, flow_result_small,
                                                 ranked_for):
        fi = sorted(flow_result_small.classification.target)[0]
        ranked = ranked_for(fi)
        assert ranked
        assert ranked[0].explains_all_failures or ranked[0].missed <= 1

    def test_no_failures_no_candidates(self, flow_result_small):
        entries = flow_result_small.schedules["prop"].entries
        sig = FailingSignature([
            Observation(e.period, e.pattern, e.config, False)
            for e in entries])
        assert diagnose(flow_result_small.data, flow_result_small.configs,
                        sig) == []

    def test_candidate_restriction(self, flow_result_small, ranked_for):
        fi = sorted(flow_result_small.classification.target)[0]
        fault = flow_result_small.data.faults[fi]
        sig = collect_signature(flow_result_small, fault)
        ranked = diagnose(flow_result_small.data, flow_result_small.configs,
                          sig, candidates=[fi])
        assert len(ranked) == 1
        assert ranked[0].fault_index == fi

    def test_max_results_honored(self, flow_result_small, ranked_for):
        fi = sorted(flow_result_small.classification.target)[0]
        fault = flow_result_small.data.faults[fi]
        sig = collect_signature(flow_result_small, fault)
        ranked = diagnose(flow_result_small.data, flow_result_small.configs,
                          sig, max_results=3)
        assert len(ranked) <= 3

    def test_scores_sorted_descending(self, ranked_for, flow_result_small):
        fi = sorted(flow_result_small.classification.target)[0]
        ranked = ranked_for(fi)
        scores = [c.score for c in ranked]
        assert scores == sorted(scores, reverse=True)


class TestPrediction:
    def test_predicts_failure_matches_ranges(self, flow_result_small):
        data = flow_result_small.data
        configs = flow_result_small.configs
        fi = sorted(data.ranges)[0]
        pi, fpr = data.pairs_for_fault(fi)[0]
        if not fpr.i_all.is_empty:
            t = fpr.i_all.intervals[0].midpoint
            assert predicts_failure(data, fi, t, pi, -1, configs)
        assert not predicts_failure(data, fi, -1.0, pi, -1, configs)

    def test_unknown_pattern_never_fails(self, flow_result_small):
        data = flow_result_small.data
        fi = sorted(data.ranges)[0]
        assert not predicts_failure(data, fi, 100.0, 10**6, -1,
                                    flow_result_small.configs)
