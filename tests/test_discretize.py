"""Tests for observation-time discretization (Sec. IV-A, Fig. 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.scheduling.discretize import (
    discretize_candidate_set,
    discretize_observation_times,
)
from repro.scheduling.reference import discretize_observation_times_reference
from repro.utils.bitset import matrix_bits
from repro.utils.intervals import IntervalSet


def iset(*pairs):
    return IntervalSet.from_pairs(pairs)


class TestFig5Example:
    """The three-fault example of Fig. 5."""

    @pytest.fixture()
    def ranges(self):
        # φ1 detectable in [1, 4], φ2 in [3, 7], φ3 in [6, 9]; window [0, 10].
        return {
            1: iset((1.0, 4.0)),
            2: iset((3.0, 7.0)),
            3: iset((6.0, 9.0)),
        }

    def test_segments_and_counts(self, ranges):
        cands = discretize_observation_times(ranges, 0.0, 10.0,
                                             prune_dominated=False)
        by_faults = {tuple(sorted(c.faults)): c for c in cands}
        # Overlap segments detect two faults each (the paper's T0 and T1).
        assert (1, 2) in by_faults
        assert (2, 3) in by_faults
        assert by_faults[(1, 2)].time == pytest.approx(3.5)
        assert by_faults[(2, 3)].time == pytest.approx(6.5)

    def test_dominated_pruning_keeps_cover(self, ranges):
        cands = discretize_observation_times(ranges, 0.0, 10.0,
                                             prune_dominated=True)
        # Single-fault segments are dominated by the two-fault overlaps.
        fault_sets = {tuple(sorted(c.faults)) for c in cands}
        assert fault_sets == {(1, 2), (2, 3)}
        covered = set().union(*(c.faults for c in cands))
        assert covered == {1, 2, 3}

    def test_midpoints_inside_segments(self, ranges):
        for c in discretize_observation_times(ranges, 0.0, 10.0):
            assert c.segment.lo < c.time < c.segment.hi


class TestEdgeCases:
    def test_empty_input(self):
        assert discretize_observation_times({}, 0.0, 10.0) == []

    def test_fault_outside_window_ignored(self):
        cands = discretize_observation_times({1: iset((20.0, 30.0))}, 0.0, 10.0)
        assert cands == []

    def test_adjacent_identical_segments_merged(self):
        # One fault: boundaries from another fault's range split its segment,
        # but the second fault is out of window -> identical sets merge back.
        ranges = {1: iset((1.0, 9.0))}
        cands = discretize_observation_times(ranges, 0.0, 10.0,
                                             prune_dominated=False)
        assert len(cands) == 1
        assert cands[0].faults == frozenset({1})

    def test_disjoint_detection_intervals(self):
        ranges = {1: iset((1.0, 2.0), (8.0, 9.0))}
        cands = discretize_observation_times(ranges, 0.0, 10.0,
                                             prune_dominated=True)
        assert len(cands) == 1  # both segments identical set -> one pruned

    def test_candidates_sorted_by_time(self):
        ranges = {i: iset((float(i), float(i) + 2.0)) for i in range(1, 6)}
        cands = discretize_observation_times(ranges, 0.0, 10.0)
        times = [c.time for c in cands]
        assert times == sorted(times)

    def test_degenerate_window_yields_no_candidates(self):
        # Zero-length observation window: every segment is degenerate and
        # must be masked out rather than becoming a zero-length candidate.
        ranges = {1: iset((1.0, 9.0))}
        assert discretize_observation_times(ranges, 5.0, 5.0) == []
        cs = discretize_candidate_set(ranges, 5.0, 5.0)
        assert cs.candidates == ()
        assert cs.matrix.shape[0] == 0

    def test_candidate_segments_have_positive_length(self):
        ranges = {1: iset((1.0, 4.0)), 2: iset((4.0, 4.0 + 1e-12)),
                  3: iset((6.0, 9.0))}
        for c in discretize_observation_times(ranges, 0.0, 10.0,
                                              prune_dominated=False):
            assert c.segment.length > 0.0


class TestPackedView:
    def test_matrix_rows_match_candidate_sets(self):
        ranges = {1: iset((1.0, 4.0)), 2: iset((3.0, 7.0)),
                  3: iset((6.0, 9.0))}
        cs = discretize_candidate_set(ranges, 0.0, 10.0,
                                      prune_dominated=False)
        assert cs.matrix.shape[0] == len(cs.candidates)
        for cand, bits in zip(cs.candidates, matrix_bits(cs.matrix)):
            assert frozenset(cs.fault_ids[b] for b in bits) == cand.faults

    def test_masks_are_python_ints(self):
        ranges = {1: iset((1.0, 4.0)), 2: iset((3.0, 7.0))}
        cs = discretize_candidate_set(ranges, 0.0, 10.0)
        for cand, mask in zip(cs.candidates, cs.masks):
            assert isinstance(mask, int)
            assert mask.bit_count() == cand.fault_count

    def test_times_are_native_floats(self):
        # numpy scalars leaking out of the sweep broke schedule export once;
        # candidate times and segment bounds must be plain floats.
        ranges = {1: iset((1.0, 4.0)), 2: iset((3.0, 7.0))}
        for c in discretize_observation_times(ranges, 0.0, 10.0):
            assert type(c.time) is float
            assert type(c.segment.lo) is float
            assert type(c.segment.hi) is float


finite = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def fault_ranges(draw):
    n = draw(st.integers(1, 6))
    out = {}
    for i in range(n):
        pairs = draw(st.lists(st.tuples(finite, finite), min_size=1,
                              max_size=3))
        out[i] = IntervalSet.from_pairs(
            (min(a, b), max(a, b)) for a, b in pairs)
    return {k: v for k, v in out.items() if not v.is_empty}


@given(fault_ranges())
def test_property_candidates_detect_their_faults(ranges):
    cands = discretize_observation_times(ranges, 0.0, 100.0)
    for c in cands:
        for fi in c.faults:
            assert ranges[fi].contains(c.time)


@given(fault_ranges())
def test_property_pruning_preserves_coverable_universe(ranges):
    full = discretize_observation_times(ranges, 0.0, 100.0,
                                        prune_dominated=False)
    pruned = discretize_observation_times(ranges, 0.0, 100.0,
                                          prune_dominated=True)
    cover_full = set().union(*(c.faults for c in full)) if full else set()
    cover_pruned = set().union(*(c.faults for c in pruned)) if pruned else set()
    assert cover_full == cover_pruned
    assert len(pruned) <= len(full)


@given(fault_ranges())
def test_property_no_candidate_dominated_after_pruning(ranges):
    pruned = discretize_observation_times(ranges, 0.0, 100.0,
                                          prune_dominated=True)
    for i, a in enumerate(pruned):
        for j, b in enumerate(pruned):
            if i != j:
                assert not (a.faults < b.faults)


@given(fault_ranges(), st.booleans())
def test_property_matches_reference_discretization(ranges, prune):
    """Sweep-line bit matrix ≡ seed per-segment frozenset construction."""
    new = discretize_observation_times(ranges, 0.0, 100.0,
                                       prune_dominated=prune)
    ref = discretize_observation_times_reference(ranges, 0.0, 100.0,
                                                 prune_dominated=prune)
    assert [c.faults for c in new] == [c.faults for c in ref]
    assert [c.time for c in new] == pytest.approx(
        [c.time for c in ref], abs=1e-9)
    assert ([(c.segment.lo, c.segment.hi) for c in new]
            == pytest.approx([(c.segment.lo, c.segment.hi) for c in ref],
                             abs=1e-9))
