"""Documentation consistency checks: the docs must not rot.

Verifies that files, modules, examples and CLI commands referenced by
README.md, DESIGN.md and docs/TUTORIAL.md actually exist in the repo.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestReadme:
    def test_referenced_packages_importable(self):
        text = read("README.md")
        for match in set(re.findall(r"`(repro(?:\.\w+)+)`", text)):
            importlib.import_module(match)

    def test_listed_examples_exist(self):
        text = read("README.md")
        for name in set(re.findall(r"`(\w+\.py)`", text)):
            assert (ROOT / "examples" / name).exists(), name

    def test_companion_documents_exist(self):
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "docs/TUTORIAL.md",
                    "LICENSE"):
            assert (ROOT / doc).exists(), doc


class TestDesign:
    def test_bench_targets_exist(self):
        text = read("DESIGN.md")
        for target in set(re.findall(r"`benchmarks/(test_bench_\w+\.py)`",
                                     text)):
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_example_targets_exist(self):
        text = read("DESIGN.md")
        for target in set(re.findall(r"`examples/(\w+\.py)`", text)):
            assert (ROOT / "examples" / target).exists(), target

    def test_paper_verification_note_present(self):
        assert "Paper verification" in read("DESIGN.md")


class TestTutorial:
    def test_mentioned_modules_importable(self):
        text = read("docs/TUTORIAL.md")
        for match in set(re.findall(r"from (repro(?:\.\w+)*) import", text)):
            importlib.import_module(match)

    def test_mentioned_symbols_exist(self):
        text = read("docs/TUTORIAL.md")
        imports = re.findall(
            r"from (repro(?:\.\w+)*) import \(([^)]*)\)", text)
        imports += re.findall(
            r"from (repro(?:\.\w+)*) import ([^\n(]+)", text)
        for module_name, symbols in imports:
            module = importlib.import_module(module_name)
            for sym in re.split(r"[,\s]+", symbols.strip()):
                if sym:
                    assert hasattr(module, sym), (module_name, sym)


class TestExperimentsDoc:
    def test_results_artifacts_mentioned_exist_after_bench(self):
        """Artifacts named in EXPERIMENTS.md must be produced by some
        benchmark module (the file may not exist before a bench run)."""
        text = read("EXPERIMENTS.md")
        bench_src = "".join(p.read_text()
                            for p in (ROOT / "benchmarks").glob("*.py"))
        for artifact in set(re.findall(r"results/(?:full/|quick/)?([\w.]+\.txt)", text)):
            assert artifact in bench_src, artifact

    def test_all_twelve_circuits_tabulated(self):
        text = read("EXPERIMENTS.md")
        from repro.circuits.library import PAPER_SUITE
        for entry in PAPER_SUITE:
            assert entry.name in text
