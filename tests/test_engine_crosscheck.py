"""Property-based cross-check of the two timing engines on random circuits.

Hypothesis drives both the circuit structure (via generator seeds) and the
pattern pairs; the topological waveform engine and the event-driven engine
must agree on all settled values — two independently-written simulators
acting as each other's oracle.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.circuits.generators import CircuitProfile, generate_circuit
from repro.simulation.event_sim import EventSimulator
from repro.simulation.wave_sim import WaveformSimulator

_CIRCUIT_CACHE: dict[int, object] = {}


def circuit_for(seed: int):
    if seed not in _CIRCUIT_CACHE:
        profile = CircuitProfile(
            name=f"x{seed}", n_gates=30, n_ffs=6, n_inputs=6, n_outputs=3,
            depth=5, seed=seed, endpoint_side_gates=seed % 2)
        _CIRCUIT_CACHE[seed] = generate_circuit(profile)
    return _CIRCUIT_CACHE[seed]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 7), st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1))
def test_engines_agree_on_settled_values(seed, v1bits, v2bits):
    circuit = circuit_for(seed)
    width = len(circuit.sources())
    v1 = [(v1bits >> i) & 1 for i in range(width)]
    v2 = [(v2bits >> i) & 1 for i in range(width)]
    wave = WaveformSimulator(circuit).simulate(v1, v2).waveforms
    event = EventSimulator(circuit).simulate(v1, v2)
    for i, g in enumerate(circuit.gates):
        assert wave[i].initial == event[i].initial, g.name
        assert wave[i].final_value == event[i].final_value, g.name


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 7), st.integers(0, 2**12 - 1))
def test_engines_agree_on_transition_parity(seed, v2bits):
    """Starting from all-zero, both engines toggle each net an equal-parity
    number of times (same initial and final value implies equal parity)."""
    circuit = circuit_for(seed)
    width = len(circuit.sources())
    v1 = [0] * width
    v2 = [(v2bits >> i) & 1 for i in range(width)]
    wave = WaveformSimulator(circuit).simulate(v1, v2).waveforms
    event = EventSimulator(circuit).simulate(v1, v2)
    for i in range(len(circuit.gates)):
        assert (wave[i].num_transitions - event[i].num_transitions) % 2 == 0
