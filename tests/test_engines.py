"""Tests for the engine registry and per-stage engine selection."""

from __future__ import annotations

import pytest

from repro.core.config import FlowConfig
from repro.core.engines import ENGINES, EngineRegistry


class TestRegistry:
    def test_default_registry_contents(self):
        assert ENGINES.stages() == ("atpg", "schedule", "simulation")
        assert ENGINES.names("atpg") == ("matrix", "reference")
        assert ENGINES.names("simulation") == (
            "incremental", "reference", "wordwave")
        assert ENGINES.default("atpg") == "matrix"
        assert ENGINES.default("simulation") == "wordwave"
        assert ENGINES.default("schedule") == "bitset"

    def test_resolve_default_and_named(self):
        assert ENGINES.resolve("atpg").name == "matrix"
        assert ENGINES.resolve("atpg", "reference").name == "reference"

    def test_resolve_unknown_engine_lists_alternatives(self):
        with pytest.raises(ValueError,
                           match=r"registered: matrix, reference"):
            ENGINES.resolve("atpg", "quantum")

    def test_unknown_stage_lists_stages(self):
        with pytest.raises(ValueError, match="atpg, schedule, simulation"):
            ENGINES.resolve("frobnicate")

    def test_duplicate_registration_rejected(self):
        reg = EngineRegistry()
        reg.register("s", "a", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("s", "a", lambda: None)

    def test_first_registration_is_implicit_default(self):
        reg = EngineRegistry()
        reg.register("s", "a", lambda: None)
        reg.register("s", "b", lambda: None)
        assert reg.default("s") == "a"
        reg2 = EngineRegistry()
        reg2.register("s", "a", lambda: None)
        reg2.register("s", "b", lambda: None, default=True)
        assert reg2.default("s") == "b"


class TestFlowConfigSelection:
    def test_defaults_normalized(self):
        cfg = FlowConfig()
        assert cfg.engines == (("atpg", "matrix"), ("schedule", "bitset"),
                               ("simulation", "wordwave"))
        assert cfg.engine_for("atpg") == "matrix"
        assert cfg.engine_for("simulation") == "wordwave"

    def test_explicit_selection(self):
        cfg = FlowConfig(engines=(("atpg", "reference"),))
        assert cfg.engine_for("atpg") == "reference"
        assert cfg.engine_for("simulation") == "wordwave"  # default kept

    def test_unknown_engine_rejected_with_alternatives(self):
        with pytest.raises(ValueError, match="registered: matrix, reference"):
            FlowConfig(engines=(("atpg", "quantum"),))

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="stages with engines"):
            FlowConfig(engines=(("routing", "fast"),))

    def test_conflicting_selection_rejected(self):
        with pytest.raises(ValueError, match="conflicting engines"):
            FlowConfig(engines=(("atpg", "matrix"), ("atpg", "reference")))


class TestDeprecatedShims:
    def test_atpg_engine_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="atpg_engine"):
            cfg = FlowConfig(atpg_engine="reference")
        assert cfg.engine_for("atpg") == "reference"
        assert cfg.atpg_engine == "reference"  # attribute stays readable

    def test_simulation_engine_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="simulation_engine"):
            cfg = FlowConfig(simulation_engine="reference")
        assert cfg.engine_for("simulation") == "reference"
        assert cfg.simulation_engine == "reference"

    def test_explicit_engines_beat_the_shim(self):
        with pytest.warns(DeprecationWarning):
            cfg = FlowConfig(engines=(("atpg", "matrix"),),
                             atpg_engine="reference")
        assert cfg.engine_for("atpg") == "matrix"

    def test_resolved_attributes_without_shim(self):
        cfg = FlowConfig()
        assert cfg.atpg_engine == "matrix"
        assert cfg.simulation_engine == "wordwave"
