"""Tests for the engine registry and per-stage engine selection."""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import FlowConfig
from repro.core.engines import ENGINES, EngineRegistry


class TestRegistry:
    def test_default_registry_contents(self):
        assert ENGINES.stages() == ("aging", "atpg", "resched",
                                    "schedule", "simulation")
        assert ENGINES.names("atpg") == ("matrix", "reference")
        assert ENGINES.names("simulation") == (
            "incremental", "reference", "wordwave")
        assert ENGINES.names("aging") == ("reference", "vectorized")
        assert ENGINES.names("resched") == ("cold", "incremental")
        assert ENGINES.default("atpg") == "matrix"
        assert ENGINES.default("simulation") == "wordwave"
        assert ENGINES.default("schedule") == "bitset"
        assert ENGINES.default("aging") == "vectorized"
        assert ENGINES.default("resched") == "incremental"

    def test_resolve_default_and_named(self):
        assert ENGINES.resolve("atpg").name == "matrix"
        assert ENGINES.resolve("atpg", "reference").name == "reference"

    def test_resolve_unknown_engine_lists_alternatives(self):
        with pytest.raises(ValueError,
                           match=r"registered: matrix, reference"):
            ENGINES.resolve("atpg", "quantum")

    def test_unknown_stage_lists_stages(self):
        with pytest.raises(ValueError,
                           match="aging, atpg, resched, schedule, "
                                 "simulation"):
            ENGINES.resolve("frobnicate")

    def test_duplicate_registration_rejected(self):
        reg = EngineRegistry()
        reg.register("s", "a", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("s", "a", lambda: None)

    def test_first_registration_is_implicit_default(self):
        reg = EngineRegistry()
        reg.register("s", "a", lambda: None)
        reg.register("s", "b", lambda: None)
        assert reg.default("s") == "a"
        reg2 = EngineRegistry()
        reg2.register("s", "a", lambda: None)
        reg2.register("s", "b", lambda: None, default=True)
        assert reg2.default("s") == "b"


class TestFlowConfigSelection:
    def test_defaults_normalized(self):
        cfg = FlowConfig()
        assert cfg.engines == (("aging", "vectorized"), ("atpg", "matrix"),
                               ("resched", "incremental"),
                               ("schedule", "bitset"),
                               ("simulation", "wordwave"))
        assert cfg.engine_for("atpg") == "matrix"
        assert cfg.engine_for("simulation") == "wordwave"
        assert cfg.engine_for("aging") == "vectorized"
        assert cfg.engine_for("resched") == "incremental"

    def test_explicit_selection(self):
        cfg = FlowConfig(engines=(("atpg", "reference"),))
        assert cfg.engine_for("atpg") == "reference"
        assert cfg.engine_for("simulation") == "wordwave"  # default kept

    def test_unknown_engine_rejected_with_alternatives(self):
        with pytest.raises(ValueError, match="registered: matrix, reference"):
            FlowConfig(engines=(("atpg", "quantum"),))

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="stages with engines"):
            FlowConfig(engines=(("routing", "fast"),))

    def test_conflicting_selection_rejected(self):
        with pytest.raises(ValueError, match="conflicting engines"):
            FlowConfig(engines=(("atpg", "matrix"), ("atpg", "reference")))


class TestShimsRemoved:
    def test_legacy_keywords_rejected(self):
        """The PR-5/7 deprecation shims are gone: the legacy keywords
        fail construction instead of warning."""
        with pytest.raises(TypeError, match="atpg_engine"):
            FlowConfig(atpg_engine="reference")
        with pytest.raises(TypeError, match="simulation_engine"):
            FlowConfig(simulation_engine="reference")

    def test_no_legacy_attributes(self):
        cfg = FlowConfig()
        assert not hasattr(cfg, "atpg_engine")
        assert not hasattr(cfg, "simulation_engine")


class TestNoDeprecationWarnings:
    def test_internal_flow_paths_are_warning_free(self, s27):
        """No internal caller relies on removed legacy spellings.

        Runs the monolith flow and the staged pipeline end to end with
        DeprecationWarnings escalated to errors.
        """
        from repro.core.flow import HdfTestFlow

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = FlowConfig(atpg_seed=1)
            HdfTestFlow(s27, config).run(with_schedules=False)
            HdfTestFlow(s27, config).run_monolith(with_schedules=False)
