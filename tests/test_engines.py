"""Tests for the engine registry and per-stage engine selection."""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import FlowConfig, reset_shim_warnings
from repro.core.engines import ENGINES, EngineRegistry


@pytest.fixture(autouse=True)
def _fresh_shim_warnings():
    """The shims warn once per process; re-arm them per test."""
    reset_shim_warnings()
    yield
    reset_shim_warnings()


class TestRegistry:
    def test_default_registry_contents(self):
        assert ENGINES.stages() == ("aging", "atpg", "resched",
                                    "schedule", "simulation")
        assert ENGINES.names("atpg") == ("matrix", "reference")
        assert ENGINES.names("simulation") == (
            "incremental", "reference", "wordwave")
        assert ENGINES.names("aging") == ("reference", "vectorized")
        assert ENGINES.names("resched") == ("cold", "incremental")
        assert ENGINES.default("atpg") == "matrix"
        assert ENGINES.default("simulation") == "wordwave"
        assert ENGINES.default("schedule") == "bitset"
        assert ENGINES.default("aging") == "vectorized"
        assert ENGINES.default("resched") == "incremental"

    def test_resolve_default_and_named(self):
        assert ENGINES.resolve("atpg").name == "matrix"
        assert ENGINES.resolve("atpg", "reference").name == "reference"

    def test_resolve_unknown_engine_lists_alternatives(self):
        with pytest.raises(ValueError,
                           match=r"registered: matrix, reference"):
            ENGINES.resolve("atpg", "quantum")

    def test_unknown_stage_lists_stages(self):
        with pytest.raises(ValueError,
                           match="aging, atpg, resched, schedule, "
                                 "simulation"):
            ENGINES.resolve("frobnicate")

    def test_duplicate_registration_rejected(self):
        reg = EngineRegistry()
        reg.register("s", "a", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("s", "a", lambda: None)

    def test_first_registration_is_implicit_default(self):
        reg = EngineRegistry()
        reg.register("s", "a", lambda: None)
        reg.register("s", "b", lambda: None)
        assert reg.default("s") == "a"
        reg2 = EngineRegistry()
        reg2.register("s", "a", lambda: None)
        reg2.register("s", "b", lambda: None, default=True)
        assert reg2.default("s") == "b"


class TestFlowConfigSelection:
    def test_defaults_normalized(self):
        cfg = FlowConfig()
        assert cfg.engines == (("aging", "vectorized"), ("atpg", "matrix"),
                               ("resched", "incremental"),
                               ("schedule", "bitset"),
                               ("simulation", "wordwave"))
        assert cfg.engine_for("atpg") == "matrix"
        assert cfg.engine_for("simulation") == "wordwave"
        assert cfg.engine_for("aging") == "vectorized"
        assert cfg.engine_for("resched") == "incremental"

    def test_explicit_selection(self):
        cfg = FlowConfig(engines=(("atpg", "reference"),))
        assert cfg.engine_for("atpg") == "reference"
        assert cfg.engine_for("simulation") == "wordwave"  # default kept

    def test_unknown_engine_rejected_with_alternatives(self):
        with pytest.raises(ValueError, match="registered: matrix, reference"):
            FlowConfig(engines=(("atpg", "quantum"),))

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="stages with engines"):
            FlowConfig(engines=(("routing", "fast"),))

    def test_conflicting_selection_rejected(self):
        with pytest.raises(ValueError, match="conflicting engines"):
            FlowConfig(engines=(("atpg", "matrix"), ("atpg", "reference")))


class TestDeprecatedShims:
    def test_atpg_engine_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="atpg_engine"):
            cfg = FlowConfig(atpg_engine="reference")
        assert cfg.engine_for("atpg") == "reference"
        assert cfg.atpg_engine == "reference"  # attribute stays readable

    def test_simulation_engine_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="simulation_engine"):
            cfg = FlowConfig(simulation_engine="reference")
        assert cfg.engine_for("simulation") == "reference"
        assert cfg.simulation_engine == "reference"

    def test_explicit_engines_beat_the_shim(self):
        with pytest.warns(DeprecationWarning):
            cfg = FlowConfig(engines=(("atpg", "matrix"),),
                             atpg_engine="reference")
        assert cfg.engine_for("atpg") == "matrix"

    def test_resolved_attributes_without_shim(self):
        cfg = FlowConfig()
        assert cfg.atpg_engine == "matrix"
        assert cfg.simulation_engine == "wordwave"

    def test_shim_warns_once_per_process(self):
        with pytest.warns(DeprecationWarning, match="atpg_engine"):
            FlowConfig(atpg_engine="reference")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cfg = FlowConfig(atpg_engine="reference")  # silent repeat
        assert cfg.engine_for("atpg") == "reference"
        # Each shim attribute warns independently.
        with pytest.warns(DeprecationWarning, match="simulation_engine"):
            FlowConfig(simulation_engine="reference")


class TestNoInternalDeprecationUse:
    def test_internal_flow_paths_are_shim_free(self, s27):
        """No internal caller constructs FlowConfig via the legacy shims.

        Runs the monolith flow and the staged pipeline end to end with
        DeprecationWarnings escalated to errors: only *user* code passing
        ``atpg_engine=``/``simulation_engine=`` may trigger the shim.
        """
        from repro.core.flow import HdfTestFlow

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = FlowConfig(atpg_seed=1)
            HdfTestFlow(s27, config).run(with_schedules=False)
            HdfTestFlow(s27, config).run_monolith(with_schedules=False)
