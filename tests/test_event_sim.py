"""Cross-checks between the event-driven and topological simulators."""

from __future__ import annotations

import random

import pytest

from repro.netlist.circuit import Circuit, GateKind
from repro.simulation.event_sim import EventSimulator
from repro.simulation.wave_sim import WaveformSimulator


def chain(n: int) -> Circuit:
    c = Circuit(f"chain{n}")
    prev = c.add_input("a")
    for i in range(n):
        prev = c.add_gate(f"g{i}", GateKind.NOT, [prev])
    c.mark_output(prev)
    return c.finalize()


class TestBasics:
    def test_requires_finalized(self):
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(ValueError):
            EventSimulator(c)

    def test_pattern_length_checked(self, tiny_circuit):
        with pytest.raises(ValueError):
            EventSimulator(tiny_circuit).simulate([0], [1])

    def test_chain_matches_wave_sim_exactly(self):
        c = chain(5)
        ev = EventSimulator(c).simulate([0], [1])
        wv = WaveformSimulator(c).simulate([0], [1]).waveforms
        for i in range(len(c.gates)):
            assert ev[i] == wv[i], c.gates[i].name


class TestCrossCheck:
    @pytest.mark.parametrize("seed", range(8))
    def test_final_values_agree_s27(self, s27, seed):
        rng = random.Random(seed)
        srcs = s27.sources()
        v1 = [rng.randint(0, 1) for _ in srcs]
        v2 = [rng.randint(0, 1) for _ in srcs]
        ev = EventSimulator(s27).simulate(v1, v2)
        wv = WaveformSimulator(s27).simulate(v1, v2).waveforms
        for i, g in enumerate(s27.gates):
            assert ev[i].initial == wv[i].initial, g.name
            assert ev[i].final_value == wv[i].final_value, g.name

    @pytest.mark.parametrize("seed", range(4))
    def test_final_values_agree_generated(self, small_generated, seed):
        rng = random.Random(100 + seed)
        srcs = small_generated.sources()
        v1 = [rng.randint(0, 1) for _ in srcs]
        v2 = [rng.randint(0, 1) for _ in srcs]
        ev = EventSimulator(small_generated).simulate(v1, v2)
        wv = WaveformSimulator(small_generated).simulate(v1, v2).waveforms
        mismatches = [g.name for i, g in enumerate(small_generated.gates)
                      if ev[i].final_value != wv[i].final_value]
        assert not mismatches

    @pytest.mark.parametrize("seed", range(4))
    def test_settle_times_close(self, s27, seed):
        """Both engines implement the same delays, so the time the circuit
        settles must agree within the inertial threshold."""
        rng = random.Random(200 + seed)
        srcs = s27.sources()
        v1 = [rng.randint(0, 1) for _ in srcs]
        v2 = [rng.randint(0, 1) for _ in srcs]
        ev = EventSimulator(s27).simulate(v1, v2)
        wv = WaveformSimulator(s27).simulate(v1, v2).waveforms
        t_ev = max(w.last_event_time for w in ev)
        t_wv = max(w.last_event_time for w in wv)
        assert t_ev == pytest.approx(t_wv, abs=10.0)

    def test_tree_waveforms_match_exactly(self):
        """Fanout-free trees have unambiguous attribution: engines must
        produce identical waveforms."""
        c = Circuit("tree")
        ins = [c.add_input(f"i{k}") for k in range(4)]
        n1 = c.add_gate("n1", GateKind.NAND, ins[:2])
        n2 = c.add_gate("n2", GateKind.NOR, ins[2:])
        top = c.add_gate("top", GateKind.AND, [n1, n2])
        c.mark_output(top)
        c.finalize()
        rng = random.Random(7)
        for _ in range(16):
            v1 = [rng.randint(0, 1) for _ in range(4)]
            v2 = [rng.randint(0, 1) for _ in range(4)]
            ev = EventSimulator(c).simulate(v1, v2)
            wv = WaveformSimulator(c).simulate(v1, v2).waveforms
            for i in (n1, n2):
                assert ev[i] == wv[i]
            assert ev[top].final_value == wv[top].final_value
