"""Smoke tests for the example scripts.

The two fast examples run end to end as subprocesses; the heavier ones are
compile-checked (their logic is covered by the unit/integration suites).
"""

from __future__ import annotations

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestCompile:
    @pytest.mark.parametrize("name", sorted(
        p.name for p in EXAMPLES.glob("*.py")))
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)

    def test_at_least_five_examples(self):
        assert len(list(EXAMPLES.glob("*.py"))) >= 5


class TestRun:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Proposed schedule" in out
        assert "frequencies" in out

    def test_netlist_io(self, tmp_path):
        out = run_example("netlist_io.py", str(tmp_path))
        assert "Functional equivalence verified" in out
        assert "Timing equivalence verified" in out

    def test_fast_scheduling_small(self):
        out = run_example("fast_scheduling.py", "s9234", "0.35")
        assert "Coverage sweep" in out
        assert "optimized" in out
