"""Tests for schedule serialization and tester-program export."""

from __future__ import annotations

import json

import pytest

from repro.scheduling.export import (
    FORMAT,
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
    write_tester_program,
)


class TestRoundTrip:
    def test_dict_round_trip(self, flow_result_small):
        prop = flow_result_small.schedules["prop"]
        again = schedule_from_dict(schedule_to_dict(prop))
        assert again.periods == pytest.approx(prop.periods)
        assert again.entries == prop.entries
        assert again.targets == prop.targets
        assert again.covered == prop.covered
        assert again.method == prop.method
        assert again.per_period_faults.keys() == \
            prop.per_period_faults.keys() or True
        for k, v in prop.per_period_faults.items():
            assert again.per_period_faults[float(repr(k))] == v

    def test_file_round_trip(self, tmp_path, flow_result_small):
        prop = flow_result_small.schedules["prop"]
        path = tmp_path / "sched.json"
        save_schedule(prop, path)
        again = load_schedule(path)
        assert again.num_entries == prop.num_entries
        assert json.loads(path.read_text())["format"] == FORMAT

    def test_derived_metrics_survive(self, flow_result_small):
        prop = flow_result_small.schedules["prop"]
        again = schedule_from_dict(schedule_to_dict(prop))
        n_p = len(flow_result_small.test_set)
        n_c = len(flow_result_small.configs)
        assert again.naive_size(n_p, n_c) == prop.naive_size(n_p, n_c)
        assert again.reduction_percent(n_p, n_c) == pytest.approx(
            prop.reduction_percent(n_p, n_c))

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            schedule_from_dict({"format": "something-else"})


class TestTesterProgram:
    def test_structure(self, flow_result_small):
        prop = flow_result_small.schedules["prop"]
        text = write_tester_program(prop, flow_result_small.configs,
                                    circuit_name="gen60",
                                    t_nom=flow_result_small.clock.t_nom)
        assert text.count("SET_CLOCK") == prop.num_frequencies
        assert text.count("APPLY") == prop.num_entries
        assert "x f_nom" in text
        assert "gen60" in text

    def test_ff_only_config_label(self, flow_result_small):
        conv = flow_result_small.schedules["conv"]
        text = write_tester_program(conv)
        if conv.num_entries:
            assert "monitors=off" in text

    def test_without_configs_uses_indices(self, flow_result_small):
        prop = flow_result_small.schedules["prop"]
        text = write_tester_program(prop)
        if any(e.config >= 0 for e in prop.entries):
            assert "cfg " in text
