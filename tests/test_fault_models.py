"""Tests for fault model dataclasses."""

from __future__ import annotations

import pytest

from repro.faults.models import OUTPUT_PIN, FaultSite, SmallDelayFault, StuckAtFault, TransitionFault


class TestFaultSite:
    def test_output_pin_default(self):
        site = FaultSite(3)
        assert site.is_output_pin
        assert site.pin == OUTPUT_PIN

    def test_input_pin(self):
        site = FaultSite(3, 1)
        assert not site.is_output_pin

    def test_signal_gate_output(self, tiny_circuit):
        g = tiny_circuit.index_of("G3")
        assert FaultSite(g).signal_gate(tiny_circuit) == g

    def test_signal_gate_input_is_driver(self, tiny_circuit):
        g3 = tiny_circuit.index_of("G3")
        driver = tiny_circuit.gates[g3].fanin[0]
        assert FaultSite(g3, 0).signal_gate(tiny_circuit) == driver

    def test_describe(self, tiny_circuit):
        g = tiny_circuit.index_of("G3")
        assert FaultSite(g).describe(tiny_circuit) == "G3.out"
        assert FaultSite(g, 1).describe(tiny_circuit) == "G3.in1"

    def test_ordering_stable(self):
        sites = [FaultSite(2, 1), FaultSite(2), FaultSite(1, 0)]
        assert sorted(sites) == [FaultSite(1, 0), FaultSite(2), FaultSite(2, 1)]


class TestSmallDelayFault:
    def test_polarity_labels(self):
        f = SmallDelayFault(FaultSite(0), slow_to_rise=True, delta=10.0)
        assert f.polarity == "STR"
        assert SmallDelayFault(FaultSite(0), False, 10.0).polarity == "STF"

    def test_describe(self, tiny_circuit):
        g = tiny_circuit.index_of("G1")
        f = SmallDelayFault(FaultSite(g), True, 12.5)
        assert "G1.out" in f.describe(tiny_circuit)
        assert "STR" in f.describe(tiny_circuit)

    def test_hashable_and_sortable(self):
        faults = {SmallDelayFault(FaultSite(0), True, 1.0),
                  SmallDelayFault(FaultSite(0), True, 1.0)}
        assert len(faults) == 1
        assert sorted([SmallDelayFault(FaultSite(1), True, 1.0),
                       SmallDelayFault(FaultSite(0), True, 1.0)])


class TestTransitionFault:
    def test_stuck_at_image(self):
        str_fault = TransitionFault(FaultSite(4), slow_to_rise=True)
        assert str_fault.as_stuck_at() == StuckAtFault(FaultSite(4), 0)
        stf_fault = TransitionFault(FaultSite(4), slow_to_rise=False)
        assert stf_fault.as_stuck_at() == StuckAtFault(FaultSite(4), 1)

    def test_launch_value(self):
        assert TransitionFault(FaultSite(0), True).launch_value == 0
        assert TransitionFault(FaultSite(0), False).launch_value == 1


class TestStuckAt:
    def test_describe(self, tiny_circuit):
        g = tiny_circuit.index_of("G1")
        assert StuckAtFault(FaultSite(g), 1).describe(tiny_circuit) == "G1.out/SA1"
