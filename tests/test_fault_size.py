"""Tests for the fault-size sensitivity sweep."""

from __future__ import annotations

import pytest

from repro.experiments.fault_size import FaultSizePoint, fault_size_sweep


@pytest.fixture(scope="module")
def sweep():
    return fault_size_sweep("s9234", n_sigmas=(2.0, 6.0, 12.0), scale=0.4,
                            pattern_cap=10)


class TestSweep:
    def test_one_point_per_size(self, sweep):
        assert [p.n_sigma for p in sweep] == [2.0, 6.0, 12.0]

    def test_universe_constant(self, sweep):
        assert len({p.universe for p in sweep}) == 1

    def test_at_speed_grows_with_fault_size(self, sweep):
        """Bigger faults exceed more path slacks."""
        at_speed = [p.at_speed_total for p in sweep]
        assert at_speed == sorted(at_speed)
        assert at_speed[-1] > at_speed[0]

    def test_population_conserved(self, sweep):
        for p in sweep:
            accounted = (p.at_speed_total + p.targets + p.timing_redundant)
            # prop includes monitor-at-speed, which sits between at_speed
            # and targets; the classes must never exceed the universe.
            assert accounted <= p.universe

    def test_prop_at_least_conv(self, sweep):
        for p in sweep:
            assert p.prop_detected >= p.conv_detected

    def test_row_format(self, sweep):
        row = sweep[0].row()
        assert row["n_sigma"] == 2.0
        assert set(row) == {"n_sigma", "universe", "at_speed", "conv",
                            "prop", "gain_%", "targets", "redundant"}

    def test_gain_edge_cases(self):
        p = FaultSizePoint(6.0, 10, 0, 0, 0, 0, 0, 0)
        assert p.gain_percent == 0.0
        p = FaultSizePoint(6.0, 10, 0, 0, 0, 5, 5, 0)
        assert p.gain_percent == float("inf")
