"""Tests for the Fig. 3 coverage-vs-f_max experiment."""

from __future__ import annotations

import pytest

from repro.experiments.fig3 import DEFAULT_RATIOS, Fig3Point, fig3_series


class TestFig3:
    @pytest.fixture(scope="class")
    def series(self, flow_result_small):
        return fig3_series(flow_result_small)

    def test_one_point_per_ratio(self, series):
        assert len(series) == len(DEFAULT_RATIOS)

    def test_ratios_sorted(self, series):
        ratios = [p.fmax_ratio for p in series]
        assert ratios == sorted(ratios)

    def test_coverages_in_unit_interval(self, series):
        for p in series:
            assert 0.0 <= p.conv_coverage <= 1.0
            assert 0.0 <= p.prop_coverage <= 1.0

    def test_conv_monotone_nondecreasing(self, series):
        """Higher f_max widens the window: coverage can only grow."""
        for a, b in zip(series, series[1:]):
            assert b.conv_coverage >= a.conv_coverage - 1e-12

    def test_prop_monotone_nondecreasing(self, series):
        for a, b in zip(series, series[1:]):
            assert b.prop_coverage >= a.prop_coverage - 1e-12

    def test_prop_dominates_conv(self, series):
        """Monitors only add observation points (Fig. 3's two curves)."""
        for p in series:
            assert p.prop_coverage >= p.conv_coverage - 1e-12

    def test_monitors_add_coverage_somewhere(self, series):
        assert any(p.prop_coverage > p.conv_coverage + 1e-9 for p in series)

    def test_conv_near_zero_at_nominal(self, series):
        """At f_max = f_nom the window degenerates to {t_nom}; at-speed
        faults are excluded from the HDF denominator, so conventional
        coverage starts at (almost) zero — the left edge of the paper's
        plot."""
        assert series[0].conv_coverage <= 0.05

    def test_ratio_beyond_simulated_window_rejected(self, flow_result_small):
        with pytest.raises(ValueError, match="exceeds"):
            fig3_series(flow_result_small, ratios=(1.0, 3.5))

    def test_custom_monitor_delay(self, flow_result_small):
        third = fig3_series(flow_result_small,
                            monitor_delay_fraction=1.0 / 3.0)
        tiny = fig3_series(flow_result_small, monitor_delay_fraction=0.01)
        # A tiny delay element recovers (almost) nothing extra.
        gain_third = sum(p.prop_coverage - p.conv_coverage for p in third)
        gain_tiny = sum(p.prop_coverage - p.conv_coverage for p in tiny)
        assert gain_third >= gain_tiny - 1e-9

    def test_point_type(self, series):
        assert isinstance(series[0], Fig3Point)

    def test_activated_denominator_raises_coverage(self, flow_result_small,
                                                   series):
        activated = fig3_series(flow_result_small, denominator="activated")
        for pessimistic, optimistic in zip(series, activated):
            assert optimistic.conv_coverage >= pessimistic.conv_coverage - 1e-12
            assert optimistic.prop_coverage >= pessimistic.prop_coverage - 1e-12

    def test_unknown_denominator_rejected(self, flow_result_small):
        with pytest.raises(ValueError, match="unknown denominator"):
            fig3_series(flow_result_small, denominator="everything")
