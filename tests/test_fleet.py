"""Tests for the fleet-scale Monte Carlo aging engine.

The heart of this file is the golden parity class: the vectorized
``(gates, devices)`` kernel must be *bit-identical* to the per-device
reference loop on a seeded population — not approximately equal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aging.fleet import (
    FLEET_ENGINES,
    sample_population,
    simulate_fleet,
    simulate_fleet_reference,
    simulate_fleet_vectorized,
)
from repro.aging.prediction import predict_fleet
from repro.aging.scenario import ScenarioSpec
from repro.experiments.artifact_cache import StageCache
from repro.experiments.fleet import fleet_distributions, run_fleet_study

SPEC = ScenarioSpec(seed=11)


@pytest.fixture(scope="module")
def golden_population(small_generated):
    return sample_population(small_generated, SPEC, 64)


@pytest.fixture(scope="module")
def reference_result(small_generated, golden_population):
    return simulate_fleet_reference(small_generated, SPEC,
                                    golden_population)


class TestPopulation:
    def test_deterministic_for_seed(self, s27):
        a = sample_population(s27, SPEC, 32)
        b = sample_population(s27, SPEC, 32)
        assert np.array_equal(a.amp_bti, b.amp_bti)
        assert np.array_equal(a.lifetime, b.lifetime)
        assert np.array_equal(a.weak_gate, b.weak_gate)
        c = sample_population(s27, SPEC.with_seed(12), 32)
        assert not np.array_equal(a.lifetime, c.lifetime)

    def test_infant_split_and_weak_gates(self, s27):
        pop = sample_population(s27, SPEC, 512)
        assert pop.is_infant.sum() == pop.infant_count
        # Weak-gate defects are exclusive to infant-mortality devices.
        assert np.all(pop.weak_delta0[~pop.is_infant] == 0.0)
        assert pop.infant_count > 0
        assert np.all(pop.weak_delta0[pop.is_infant].max(axis=1) > 0.0)

    def test_tau_clamped(self, s27):
        pop = sample_population(s27, SPEC, 512)
        assert np.all(pop.tau >= SPEC.tau_min)
        assert np.all(pop.tau <= SPEC.tau_max)

    def test_needs_a_device(self, s27):
        with pytest.raises(ValueError, match="at least one device"):
            sample_population(s27, SPEC, 0)


class TestGoldenParity:
    """Vectorized engine pinned bit-identical to the reference loop."""

    def test_bit_identical_on_seeded_population(self, small_generated,
                                                golden_population,
                                                reference_result):
        vec = simulate_fleet_vectorized(small_generated, SPEC,
                                        golden_population)
        assert np.array_equal(reference_result.slack, vec.slack)
        assert np.array_equal(reference_result.first_alert, vec.first_alert)
        assert np.array_equal(reference_result.failure, vec.failure)
        assert reference_result.clock_period == vec.clock_period
        assert reference_result.config_delays == vec.config_delays

    def test_partial_blocks_identical(self, small_generated,
                                      golden_population, reference_result):
        vec = simulate_fleet_vectorized(small_generated, SPEC,
                                        golden_population, block=7)
        assert np.array_equal(reference_result.slack, vec.slack)
        assert np.array_equal(reference_result.first_alert, vec.first_alert)
        assert np.array_equal(reference_result.failure, vec.failure)

    def test_sharded_run_identical(self, s27):
        pop = sample_population(s27, SPEC, 33)
        solo = simulate_fleet_vectorized(s27, SPEC, pop)
        sharded = simulate_fleet_vectorized(s27, SPEC, pop, jobs=3)
        assert np.array_equal(solo.slack, sharded.slack)
        assert np.array_equal(solo.first_alert, sharded.first_alert)
        assert np.array_equal(solo.failure, sharded.failure)


class TestFleetBehavior:
    def test_slack_monotone_decreasing(self, reference_result):
        # Degradation only accumulates: per-device slack never recovers.
        diffs = np.diff(reference_result.slack, axis=1)
        assert np.all(diffs <= 1e-12)

    def test_larger_delay_elements_alert_no_later(self, reference_result):
        alerts = reference_result.first_alert_times()
        for ci in range(alerts.shape[0] - 1):
            small, big = alerts[ci], alerts[ci + 1]
            both = ~np.isnan(small) & ~np.isnan(big)
            assert np.all(big[both] <= small[both])

    def test_failure_time_helpers(self, reference_result):
        ft = reference_result.failure_times()
        never = reference_result.failure < 0
        assert np.all(np.isnan(ft[never]))
        hit = ~never
        times = reference_result.times
        assert np.array_equal(ft[hit],
                              times[reference_result.failure[hit]])

    def test_first_warning_is_earliest_alert(self, reference_result):
        alerts = reference_result.first_alert_times()
        with np.errstate(invalid="ignore"):
            expected = np.nanmin(alerts, axis=0)
        got = reference_result.first_warning_times()
        assert np.array_equal(np.isnan(expected), np.isnan(got))
        mask = ~np.isnan(expected)
        assert np.array_equal(expected[mask], got[mask])

    def test_engine_dispatch_and_validation(self, s27):
        with pytest.raises(ValueError, match="unknown fleet engine"):
            simulate_fleet(s27, SPEC, 8, engine="quantum")
        pop = sample_population(s27, SPEC, 8)
        with pytest.raises(ValueError, match="does not match"):
            simulate_fleet(s27, SPEC, 16, population=pop)
        assert set(FLEET_ENGINES) == {"reference", "vectorized"}

    def test_prediction_metrics_sane(self, reference_result):
        preds = predict_fleet(reference_result)
        m = preds.metrics()
        assert m["devices"] == 64
        assert 0.0 <= m["detection_rate"] <= 1.0
        assert 0.0 <= m["mispredict_rate"] <= 1.0
        assert m["failed"] == m["detected"] + m["missed"]


class TestFleetStudy:
    def test_cached_replay_identical(self, s27, tmp_path):
        cache = StageCache(tmp_path)
        first = run_fleet_study(s27, spec=SPEC, devices=48, cache=cache)
        replay = run_fleet_study(s27, spec=SPEC, devices=48, cache=cache)
        stages = replay.meta["stages"]
        assert all(info["cache"] == "hit" for info in stages.values())
        assert np.array_equal(first.artifact.result.slack,
                              replay.artifact.result.slack)
        assert first.artifact.metrics == replay.artifact.metrics

    def test_engine_override_reuses_sta(self, s27, tmp_path):
        cache = StageCache(tmp_path)
        vec = run_fleet_study(s27, spec=SPEC, devices=48, cache=cache,
                              engine="vectorized")
        ref = run_fleet_study(s27, spec=SPEC, devices=48, cache=cache,
                              engine="reference")
        assert ref.meta["stages"]["sta"]["cache"] == "hit"
        assert ref.meta["stages"]["aging"]["cache"] == "miss"
        assert np.array_equal(vec.artifact.result.slack,
                              ref.artifact.result.slack)

    def test_summary_shape(self, s27):
        study = run_fleet_study(s27, spec=SPEC, devices=32, use_cache=False)
        summary = study.summary()
        assert summary["devices"] == 32
        assert set(summary["distributions"]) >= {
            "detection_latency", "lead_time", "failure_time",
            "infant_failure_time", "wearout_failure_time",
            "infant_devices"}
        dist = fleet_distributions(study.artifact)
        assert dist["infant_devices"] == study.artifact.result \
            .population.infant_count
