"""End-to-end tests of the HDF test flow (Fig. 4)."""

from __future__ import annotations

import pytest

from repro.core import FlowConfig, HdfTestFlow
from repro.monitors.monitor import PAPER_DELAY_FRACTIONS
from repro.simulation.wave_sim import WaveformSimulator


class TestFlowConfig:
    def test_defaults_match_paper(self):
        cfg = FlowConfig()
        assert cfg.fast_ratio == 3.0
        assert cfg.monitor_fraction == 0.25
        assert cfg.monitor_delay_fractions == PAPER_DELAY_FRACTIONS
        assert cfg.sigma_fraction == 0.2
        assert cfg.n_sigma == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowConfig(fast_ratio=0.5)
        with pytest.raises(ValueError):
            FlowConfig(monitor_fraction=2.0)
        with pytest.raises(ValueError):
            FlowConfig(pattern_cap=0)
        with pytest.raises(ValueError):
            FlowConfig(coverage_targets=(1.5,))


class TestFlowRun:
    def test_requires_finalized_circuit(self):
        from repro.netlist.circuit import Circuit
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(ValueError):
            HdfTestFlow(c)

    def test_result_fields_populated(self, flow_result_small):
        res = flow_result_small
        assert res.universe_size > 0
        assert res.prefilter is not None
        assert res.atpg is not None
        assert len(res.test_set) > 0
        assert res.data.faults
        assert set(res.schedules) == {"conv", "heur", "prop"}

    def test_clock_derived_from_sta(self, flow_result_small):
        res = flow_result_small
        assert res.clock.t_nom == pytest.approx(res.sta.clock_period)
        assert res.clock.fast_ratio == 3.0

    def test_monitor_configs_scaled_to_clock(self, flow_result_small):
        res = flow_result_small
        fractions = sorted(PAPER_DELAY_FRACTIONS)
        for d, f in zip(res.configs, fractions):
            assert d == pytest.approx(f * res.clock.t_nom)

    def test_prop_detects_at_least_conv(self, flow_result_small):
        assert flow_result_small.prop_hdf_detected >= \
            flow_result_small.conv_hdf_detected

    def test_table_rows_consistent(self, flow_result_small):
        r1 = flow_result_small.table1_row()
        assert r1["targets"] == len(flow_result_small.classification.target)
        assert r1["monitors"] == flow_result_small.placement.count
        r2 = flow_result_small.table2_row()
        assert r2["freq_prop"] == \
            flow_result_small.schedules["prop"].num_frequencies
        r3 = flow_result_small.table3_row()
        assert "F_95" in r3 and "S_90" in r3

    def test_summary_keys(self, flow_result_small):
        s = flow_result_small.summary()
        assert s["circuit"] == flow_result_small.circuit.name
        assert "freqs_prop" in s and "atpg_coverage" in s

    def test_progress_callback_invoked(self, s27):
        notes = []
        HdfTestFlow(s27, FlowConfig(atpg_seed=1)).run(
            with_schedules=False, progress=notes.append)
        assert any("fault simulation" in n for n in notes)

    def test_external_test_set(self, s27):
        from repro.atpg.patterns import random_test_set
        ts = random_test_set(s27, 12, seed=5)
        res = HdfTestFlow(s27, FlowConfig()).run(test_set=ts,
                                                 with_schedules=False)
        assert res.atpg is None
        assert len(res.test_set) == 12

    def test_pattern_cap(self, s27):
        res = HdfTestFlow(s27, FlowConfig(pattern_cap=4)).run(
            with_schedules=False)
        assert len(res.test_set) <= 4


class TestDeterminism:
    """Two runs of the full pipeline must agree bit for bit — any hidden
    iteration-order dependence would silently break reproducibility."""

    def test_flow_fully_deterministic(self, s27):
        def run():
            return HdfTestFlow(s27, FlowConfig(atpg_seed=9)).run(
                with_schedules=True)
        a, b = run(), run()
        assert a.table1_row() == b.table1_row()
        assert a.test_set.patterns == b.test_set.patterns
        assert a.classification.summary() == b.classification.summary()
        for name in ("conv", "heur", "prop"):
            assert a.schedules[name].entries == b.schedules[name].entries
            assert a.schedules[name].periods == \
                pytest.approx(b.schedules[name].periods)
        # Detection ranges themselves.
        assert set(a.data.ranges) == set(b.data.ranges)
        for fi in a.data.ranges:
            for pi, fpr in a.data.ranges[fi].items():
                assert b.data.ranges[fi][pi].i_all == fpr.i_all
                assert b.data.ranges[fi][pi].i_mon == fpr.i_mon


class TestMonitorSemanticsConsistency:
    """The interval math (detection ranges + shifts) and the hardware model
    (shadow register sampling at ``t - d``) must tell the same story."""

    def test_monitor_at_speed_faults_flag_shadow_mismatch(self,
                                                          flow_result_small):
        res = flow_result_small
        sim = WaveformSimulator(res.circuit)
        t_nom = res.clock.t_nom
        checked = 0
        for fi in sorted(res.classification.monitor_at_speed)[:10]:
            fault = res.data.faults[fi]
            # Find a pattern and config whose shifted range covers t_nom.
            found = False
            for pi, fpr in res.data.pairs_for_fault(fi):
                for ci, d in enumerate(res.configs):
                    if not fpr.i_mon.shifted(d).contains(t_nom):
                        continue
                    pattern = res.test_set[pi]
                    base = sim.simulate(pattern.launch, pattern.capture)
                    faulty = sim.simulate_fault(base, fault)
                    # Some monitored output's shadow register captures a
                    # different value in the faulty machine.
                    for og in res.placement.monitored_gates:
                        if base.waveforms[og].value_at(t_nom - d) != \
                                faulty.waveforms[og].value_at(t_nom - d):
                            found = True
                            break
                    if found:
                        break
                if found:
                    break
            assert found, f"fault {fi}: shifted range not realized in hardware"
            checked += 1
        if res.classification.monitor_at_speed:
            assert checked > 0


class TestScheduleExecution:
    """Independent verification: executing a schedule entry really captures
    a faulty value for the fault it claims to cover."""

    def test_entries_capture_faults(self, flow_result_small):
        res = flow_result_small
        circuit = res.circuit
        sim = WaveformSimulator(circuit)
        configs = res.configs
        monitored = res.placement.monitored_gates
        prop = res.schedules["prop"]
        data = res.data

        # Map each target fault to one claimed (entry) and replay it.
        checked = 0
        for fi in sorted(prop.targets)[:25]:
            fault = data.faults[fi]
            entry = None
            for e in prop.entries:
                fpr = data.ranges.get(fi, {}).get(e.pattern)
                if fpr is None:
                    continue
                if fpr.i_all.contains(e.period) or (
                        e.config >= 0 and fpr.i_mon.shifted(
                            configs[e.config]).contains(e.period)):
                    entry = e
                    break
            assert entry is not None
            pattern = res.test_set[entry.pattern]
            base = sim.simulate(pattern.launch, pattern.capture)
            faulty = sim.simulate_fault(base, fault)
            t = entry.period
            d = configs[entry.config] if entry.config >= 0 else None
            obs_gates = {op.gate for op in circuit.observation_points()}
            miscaptured = False
            for og in obs_gates:
                g_wave = base.waveforms[og]
                f_wave = faulty.waveforms[og]
                if g_wave.value_at(t) != f_wave.value_at(t):
                    miscaptured = True  # standard FF sees the fault
                    break
                if d is not None and og in monitored and \
                        g_wave.value_at(t - d) != f_wave.value_at(t - d):
                    miscaptured = True  # shadow register sees the fault
                    break
            assert miscaptured, f"schedule entry fails to expose fault {fi}"
            checked += 1
        assert checked > 0
