"""Flow behavior under non-default configurations."""

from __future__ import annotations

import pytest

from repro.core import FlowConfig, HdfTestFlow


@pytest.fixture(scope="module")
def circuit():
    from repro.circuits.generators import CircuitProfile, generate_circuit
    return generate_circuit(CircuitProfile(
        name="variant", n_gates=70, n_ffs=14, n_inputs=8, n_outputs=4,
        depth=7, seed=11, endpoint_side_gates=1))


class TestNoMonitors:
    @pytest.fixture(scope="class")
    def result(self, circuit):
        return HdfTestFlow(circuit, FlowConfig(
            monitor_fraction=0.0, atpg_seed=2)).run(with_schedules=True)

    def test_no_monitors_placed(self, result):
        assert result.placement.count == 0

    def test_prop_equals_conv(self, result):
        assert result.prop_hdf_detected == result.conv_hdf_detected
        assert result.gain_percent == 0.0

    def test_no_monitor_at_speed_class(self, result):
        assert result.classification.monitor_at_speed == set()

    def test_schedules_agree_on_targets(self, result):
        # Without monitors the proposed method degenerates to conventional
        # FAST over the same fault set.
        conv = result.schedules["conv"]
        prop = result.schedules["prop"]
        assert prop.targets == conv.targets
        assert prop.num_frequencies == conv.num_frequencies


class TestFastRatio:
    def run_with_ratio(self, circuit, ratio):
        return HdfTestFlow(circuit, FlowConfig(
            fast_ratio=ratio, atpg_seed=2)).run(with_schedules=False)

    def test_wider_window_detects_more(self, circuit):
        narrow = self.run_with_ratio(circuit, 1.5)
        wide = self.run_with_ratio(circuit, 3.0)
        assert wide.conv_hdf_detected >= narrow.conv_hdf_detected
        assert wide.prop_hdf_detected >= narrow.prop_hdf_detected

    def test_window_bounds_follow_ratio(self, circuit):
        res = self.run_with_ratio(circuit, 2.0)
        assert res.clock.t_min == pytest.approx(res.clock.t_nom / 2.0)

    def test_degenerate_ratio_one(self, circuit):
        """f_max = f_nom: the window collapses to at-speed testing; nothing
        needs (or can use) FAST scheduling."""
        res = self.run_with_ratio(circuit, 1.0)
        # Faults are either at-speed detectable or unreachable.
        assert res.classification.target == set() or all(
            res.data.detection_range(
                fi, tuple(res.configs), res.clock.t_min,
                res.clock.t_nom).is_empty is False
            for fi in res.classification.target)


class TestMonitorFractionMonotonicity:
    def test_prop_detection_monotone_in_fraction(self, circuit):
        counts = []
        for frac in (0.0, 0.5, 1.0):
            res = HdfTestFlow(circuit, FlowConfig(
                monitor_fraction=frac, atpg_seed=2)).run(
                with_schedules=False)
            counts.append(res.prop_hdf_detected)
        assert counts == sorted(counts)


class TestSimulationJobsConfig:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="simulation_jobs"):
            FlowConfig(simulation_jobs=0)

    def test_flow_with_jobs_two(self, circuit):
        seq = HdfTestFlow(circuit, FlowConfig(
            atpg_seed=2, simulation_jobs=1)).run(with_schedules=False)
        par = HdfTestFlow(circuit, FlowConfig(
            atpg_seed=2, simulation_jobs=2)).run(with_schedules=False)
        assert seq.table1_row() == par.table1_row()
