"""Exhaustive tests for GateKind arity rules and small circuit helpers."""

from __future__ import annotations

import pytest

from repro.netlist.circuit import Circuit, Gate, GateKind, ObservationPoint


class TestArityRules:
    @pytest.mark.parametrize("kind", [GateKind.INPUT, GateKind.CONST0,
                                      GateKind.CONST1])
    def test_sources_take_no_inputs(self, kind):
        GateKind.check_arity(kind, 0)
        with pytest.raises(ValueError, match="no inputs"):
            GateKind.check_arity(kind, 1)

    def test_dff_exactly_one(self):
        GateKind.check_arity(GateKind.DFF, 1)
        for n in (0, 2):
            with pytest.raises(ValueError, match="exactly one"):
                GateKind.check_arity(GateKind.DFF, n)

    @pytest.mark.parametrize("kind", [GateKind.NOT, GateKind.BUF])
    def test_unary_gates(self, kind):
        GateKind.check_arity(kind, 1)
        with pytest.raises(ValueError):
            GateKind.check_arity(kind, 2)

    @pytest.mark.parametrize("kind", [GateKind.XOR, GateKind.XNOR])
    def test_parity_gates_need_two(self, kind):
        GateKind.check_arity(kind, 2)
        GateKind.check_arity(kind, 3)
        with pytest.raises(ValueError, match=">=2"):
            GateKind.check_arity(kind, 1)

    @pytest.mark.parametrize("kind", [GateKind.AND, GateKind.NAND,
                                      GateKind.OR, GateKind.NOR])
    def test_simple_gates_need_one(self, kind):
        GateKind.check_arity(kind, 1)
        with pytest.raises(ValueError, match=">=1"):
            GateKind.check_arity(kind, 0)

    def test_membership_sets_partition(self):
        assert not GateKind.SOURCES & GateKind.COMBINATIONAL
        assert GateKind.ALL == GateKind.SOURCES | GateKind.COMBINATIONAL

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown gate kind"):
            GateKind.check_arity("LATCH", 1)


class TestSmallHelpers:
    def test_gate_delay_helpers_on_source(self):
        g = Gate(index=0, name="x", kind=GateKind.INPUT)
        assert g.max_delay() == 0.0
        assert g.min_delay() == 0.0
        assert g.arity == 0

    def test_observation_point_ordering(self):
        a = ObservationPoint(kind="po", gate=1, name="po:x")
        b = ObservationPoint(kind="ppo", gate=0, name="ppo:y", sink=5)
        assert sorted([b, a]) == [a, b]
        assert b.is_pseudo and not a.is_pseudo

    def test_iter_gates(self, tiny_circuit):
        names = [g.name for g in tiny_circuit.iter_gates()]
        assert len(names) == len(tiny_circuit.gates)
        assert names[0] == "A"

    def test_const_values(self):
        c = Circuit("k")
        zero = c.add_const("zero", 0)
        one = c.add_const("one", 1)
        assert c.gates[zero].kind == GateKind.CONST0
        assert c.gates[one].kind == GateKind.CONST1

    def test_has_gate_and_index_of(self, tiny_circuit):
        assert tiny_circuit.has_gate("G1")
        assert not tiny_circuit.has_gate("nope")
        idx = tiny_circuit.index_of("G1")
        assert tiny_circuit.gates[idx].name == "G1"
        with pytest.raises(KeyError):
            tiny_circuit.index_of("nope")
