"""Tests for the synthetic circuit generator."""

from __future__ import annotations

import pytest

from repro.circuits.generators import CircuitProfile, generate_circuit
from repro.netlist.validate import validate_circuit


def profile(**overrides):
    base = dict(name="t", n_gates=80, n_ffs=16, n_inputs=10, n_outputs=6,
                depth=8, seed=3)
    base.update(overrides)
    return CircuitProfile(**base)


class TestProfileValidation:
    def test_too_few_gates(self):
        with pytest.raises(ValueError):
            CircuitProfile(name="x", n_gates=3, n_ffs=2, depth=8)

    def test_too_few_inputs(self):
        with pytest.raises(ValueError):
            profile(n_inputs=1)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            profile(short_path_ppo_fraction=1.5)


class TestGeneration:
    def test_deterministic(self):
        a = generate_circuit(profile())
        b = generate_circuit(profile())
        assert [g.name for g in a.gates] == [g.name for g in b.gates]
        assert [g.fanin for g in a.gates] == [g.fanin for g in b.gates]

    def test_seed_changes_structure(self):
        a = generate_circuit(profile(seed=1))
        b = generate_circuit(profile(seed=2))
        assert [g.fanin for g in a.gates] != [g.fanin for g in b.gates]

    def test_requested_counts(self):
        c = generate_circuit(profile())
        assert c.num_ffs == 16
        assert len(c.inputs) == 10
        assert len(c.outputs) == 6
        # Endpoint/side gates add to the core budget.
        assert c.num_gates >= 80

    def test_validates_clean(self):
        c = generate_circuit(profile())
        report = validate_circuit(c)
        assert report.ok, report.errors

    def test_depth_at_least_profile_depth(self):
        c = generate_circuit(profile(depth=10, n_gates=120))
        assert c.depth >= 10

    def test_side_gates_exclusive_to_one_ff(self):
        c = generate_circuit(profile(endpoint_side_gates=2))
        for g in c.gates:
            if g.name.startswith("side"):
                fanouts = c.fanouts(g.index)
                assert len(fanouts) == 1
                assert g.index not in c.outputs

    def test_no_side_gates_when_zero(self):
        c = generate_circuit(profile(endpoint_side_gates=0))
        assert not any(g.name.startswith("side") for g in c.gates)
        assert not any(g.name.startswith("ep") for g in c.gates)

    def test_large_side_budget_folds_to_four_inputs(self):
        c = generate_circuit(profile(endpoint_side_gates=5))
        for g in c.gates:
            assert g.arity <= 4

    def test_short_path_fraction_shapes_ppo_arrivals(self):
        from repro.timing.sta import run_sta
        many_short = generate_circuit(profile(
            name="short", short_path_ppo_fraction=0.8, endpoint_side_gates=0))
        few_short = generate_circuit(profile(
            name="long", short_path_ppo_fraction=0.0, endpoint_side_gates=0))
        def median_ppo_arrival(c):
            sta = run_sta(c)
            arr = sorted(sta.arrival_max[op.gate]
                         for op in c.observation_points() if op.is_pseudo)
            return arr[len(arr) // 2] / sta.critical_path
        assert median_ppo_arrival(many_short) < median_ppo_arrival(few_short)
