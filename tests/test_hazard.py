"""Tests for the Weibull hazard mixture behind the fleet populations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aging.hazard import WeibullHazard, WeibullMixture


class TestWeibullHazard:
    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            WeibullHazard(shape=0.0, scale=1.0)
        with pytest.raises(ValueError, match="scale"):
            WeibullHazard(shape=1.0, scale=-2.0)

    def test_cdf_shape(self):
        h = WeibullHazard(shape=2.0, scale=5.0)
        assert h.cdf(0.0) == 0.0
        assert h.cdf(-3.0) == 0.0
        t = np.linspace(0.1, 12.0, 50)
        c = np.array([h.cdf(x) for x in t])
        assert np.all(np.diff(c) > 0)
        assert c[-1] < 1.0
        # At t = scale the CDF of any Weibull is 1 - 1/e.
        assert h.cdf(5.0) == pytest.approx(1.0 - np.exp(-1.0))

    def test_quantile_inverts_cdf(self):
        h = WeibullHazard(shape=0.7, scale=3.0)
        for u in (0.01, 0.25, 0.5, 0.9, 0.999):
            assert h.cdf(h.quantile(u)) == pytest.approx(u, rel=1e-12)

    def test_hazard_rate_monotonicity(self):
        t = np.linspace(0.2, 10.0, 30)
        wearout = WeibullHazard(shape=4.0, scale=5.0)
        rates = np.array([wearout.hazard_rate(x) for x in t])
        assert np.all(np.diff(rates) > 0)       # wear-out: increasing
        infant = WeibullHazard(shape=0.5, scale=5.0)
        rates = np.array([infant.hazard_rate(x) for x in t])
        assert np.all(np.diff(rates) < 0)       # infant: decreasing

    def test_empirical_cdf_matches_analytic(self):
        h = WeibullHazard(shape=1.8, scale=4.0)
        rng = np.random.default_rng(5)
        draws = h.sample(rng, 100_000)
        for t in (1.0, 3.0, 6.0, 10.0):
            empirical = float(np.mean(draws <= t))
            assert empirical == pytest.approx(h.cdf(t), abs=5e-3)


class TestWeibullMixture:
    def test_weight_validation(self):
        comp = (WeibullHazard(0.5, 1.0), WeibullHazard(4.0, 10.0))
        with pytest.raises(ValueError, match="sum to 1"):
            WeibullMixture(components=comp, weights=(0.5, 0.4))
        with pytest.raises(ValueError, match="one weight per"):
            WeibullMixture(components=comp, weights=(1.0,))

    def test_bathtub_defaults(self):
        mix = WeibullMixture.bathtub()
        assert mix.infant.shape < 1.0      # decreasing early hazard
        assert mix.wearout.shape > 1.0     # increasing late hazard
        assert mix.weights[0] == pytest.approx(0.08)

    def test_mixture_cdf_is_weighted_sum(self):
        mix = WeibullMixture.bathtub()
        for t in (0.5, 2.0, 8.0, 15.0):
            expected = sum(w * c.cdf(t) for w, c in
                           zip(mix.weights, mix.components))
            assert mix.cdf(t) == pytest.approx(expected)

    def test_sample_components_follow_weights(self):
        mix = WeibullMixture.bathtub(infant_weight=0.2)
        rng = np.random.default_rng(9)
        times, comp = mix.sample(rng, 50_000)
        assert times.shape == comp.shape == (50_000,)
        assert np.all(times >= 0.0)
        assert float(np.mean(comp == 0)) == pytest.approx(0.2, abs=0.01)

    def test_sample_empirical_cdf_statistical(self):
        """Empirical mixture CDF tracks the analytic one (fixed seed)."""
        mix = WeibullMixture.bathtub()
        rng = np.random.default_rng(17)
        times, _ = mix.sample(rng, 200_000)
        for t in (0.25, 1.0, 5.0, 10.0, 14.0):
            empirical = float(np.mean(times <= t))
            assert empirical == pytest.approx(mix.cdf(t), abs=5e-3)

    def test_infant_draws_skew_early(self):
        mix = WeibullMixture.bathtub()
        rng = np.random.default_rng(3)
        times, comp = mix.sample(rng, 20_000)
        assert np.median(times[comp == 0]) < np.median(times[comp == 1])
