"""Tests for monitor insertion at long path ends."""

from __future__ import annotations

import pytest

from repro.monitors.insertion import insert_monitors
from repro.monitors.monitor import MonitorConfigSet
from repro.timing.clock import ClockSpec
from repro.timing.sta import run_sta


@pytest.fixture()
def setup(small_generated):
    sta = run_sta(small_generated)
    configs = MonitorConfigSet.paper_default(sta.clock_period)
    return small_generated, sta, configs


class TestInsertion:
    def test_default_quarter_of_ppos(self, setup):
        circuit, sta, configs = setup
        placement = insert_monitors(circuit, sta, configs)
        n_ppos = sum(1 for op in circuit.observation_points() if op.is_pseudo)
        assert placement.count == max(1, round(0.25 * n_ppos))

    def test_monitors_on_longest_paths(self, setup):
        circuit, sta, configs = setup
        placement = insert_monitors(circuit, sta, configs)
        monitored = [sta.arrival_max[op.gate] for op in placement.points]
        unmonitored = [sta.arrival_max[op.gate]
                       for op in circuit.observation_points()
                       if op.is_pseudo and op not in placement.points]
        if unmonitored:
            assert min(monitored) >= max(
                a for a in unmonitored) - 1e-9 or \
                min(monitored) >= sorted(unmonitored)[-1] - 1e-9

    def test_fraction_zero(self, setup):
        circuit, sta, configs = setup
        placement = insert_monitors(circuit, sta, configs, fraction=0.0)
        assert placement.count == 0
        assert placement.monitored_gates == frozenset()

    def test_fraction_one_covers_all_ppos(self, setup):
        circuit, sta, configs = setup
        placement = insert_monitors(circuit, sta, configs, fraction=1.0)
        n_ppos = sum(1 for op in circuit.observation_points() if op.is_pseudo)
        assert placement.count == n_ppos

    def test_at_least_one_when_fraction_positive(self, s27):
        sta = run_sta(s27)
        configs = MonitorConfigSet.paper_default(sta.clock_period)
        placement = insert_monitors(s27, sta, configs, fraction=0.01)
        assert placement.count == 1

    def test_invalid_fraction(self, setup):
        circuit, sta, configs = setup
        with pytest.raises(ValueError):
            insert_monitors(circuit, sta, configs, fraction=1.5)

    def test_include_primary_outputs(self, setup):
        circuit, sta, configs = setup
        with_pos = insert_monitors(circuit, sta, configs, fraction=1.0,
                                   include_primary_outputs=True)
        only_ppos = insert_monitors(circuit, sta, configs, fraction=1.0)
        assert with_pos.count >= only_ppos.count

    def test_deterministic(self, setup):
        circuit, sta, configs = setup
        a = insert_monitors(circuit, sta, configs)
        b = insert_monitors(circuit, sta, configs)
        assert [p.name for p in a.points] == [p.name for p in b.points]

    def test_monitor_names_reference_points(self, setup):
        circuit, sta, configs = setup
        placement = insert_monitors(circuit, sta, configs)
        for mon, op in zip(placement.bank, placement.points):
            assert op.name in mon.name
            assert mon.gate == op.gate
