"""Unit and property tests for the interval algebra."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.intervals import EPS, Interval, IntervalSet, segment_axis


def iset(*pairs: tuple[float, float]) -> IntervalSet:
    return IntervalSet.from_pairs(pairs)


# ----------------------------------------------------------------------
# Interval basics
# ----------------------------------------------------------------------
class TestInterval:
    def test_length_and_midpoint(self):
        iv = Interval(2.0, 6.0)
        assert iv.length == 4.0
        assert iv.midpoint == 4.0

    def test_degenerate_interval_allowed(self):
        assert Interval(3.0, 3.0).length == 0.0

    def test_inverted_raises(self):
        with pytest.raises(ValueError):
            Interval(5.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_contains_with_tolerance(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(2.0)
        assert not iv.contains(2.1)

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert Interval(0, 2).overlaps(Interval(2, 3))  # touching counts
        assert not Interval(0, 1).overlaps(Interval(2, 3))

    def test_shifted(self):
        assert Interval(1, 2).shifted(0.5) == Interval(1.5, 2.5)

    def test_intersect_disjoint_is_none(self):
        assert Interval(0, 1).intersect(Interval(2, 3)) is None


# ----------------------------------------------------------------------
# IntervalSet construction and queries
# ----------------------------------------------------------------------
class TestIntervalSetBasics:
    def test_empty(self):
        s = IntervalSet.empty()
        assert s.is_empty
        assert s.measure == 0.0
        assert not s.contains(1.0)
        assert len(s) == 0

    def test_merges_overlapping(self):
        s = iset((0, 2), (1, 3))
        assert len(s) == 1
        assert s.intervals[0] == Interval(0, 3)

    def test_merges_touching(self):
        s = iset((0, 1), (1, 2))
        assert len(s) == 1

    def test_keeps_disjoint(self):
        s = iset((0, 1), (2, 3))
        assert len(s) == 2

    def test_drops_zero_length_by_default(self):
        assert iset((1, 1)).is_empty

    def test_measure(self):
        assert iset((0, 1), (2, 4)).measure == pytest.approx(3.0)

    def test_span(self):
        assert iset((0, 1), (5, 6)).span == Interval(0, 6)
        assert IntervalSet.empty().span is None

    def test_contains_binary_search(self):
        s = iset(*((float(i), float(i) + 0.5) for i in range(0, 40, 2)))
        assert s.contains(10.2)
        assert not s.contains(11.0)

    def test_boundaries_sorted(self):
        assert iset((2, 3), (0, 1)).boundaries() == [0, 1, 2, 3]

    def test_equality_with_tolerance(self):
        assert iset((0, 1)) == iset((0, 1 + EPS / 2))
        assert iset((0, 1)) != iset((0, 2))

    def test_midpoints(self):
        assert iset((0, 2), (4, 6)).midpoints() == [1.0, 5.0]


# ----------------------------------------------------------------------
# Set algebra
# ----------------------------------------------------------------------
class TestAlgebra:
    def test_union(self):
        assert iset((0, 1)) | iset((2, 3)) == iset((0, 1), (2, 3))

    def test_union_with_empty(self):
        s = iset((1, 2))
        assert s | IntervalSet.empty() == s
        assert IntervalSet.empty() | s == s

    def test_intersection(self):
        a = iset((0, 5), (10, 15))
        b = iset((3, 12))
        assert (a & b) == iset((3, 5), (10, 12))

    def test_intersection_disjoint(self):
        assert (iset((0, 1)) & iset((2, 3))).is_empty

    def test_difference(self):
        a = iset((0, 10))
        b = iset((2, 3), (5, 6))
        assert a - b == iset((0, 2), (3, 5), (6, 10))

    def test_difference_total(self):
        assert (iset((1, 2)) - iset((0, 3))).is_empty

    def test_shift(self):
        assert iset((1, 2), (4, 5)).shifted(10) == iset((11, 12), (14, 15))

    def test_shift_zero_is_identity(self):
        s = iset((1, 2))
        assert s.shifted(0.0) is s

    def test_clip(self):
        assert iset((0, 10)).clipped(3, 7) == iset((3, 7))
        assert iset((0, 1)).clipped(5, 6).is_empty
        assert iset((0, 10)).clipped(7, 3).is_empty


# ----------------------------------------------------------------------
# Pulse filtering (Fig. 1 semantics)
# ----------------------------------------------------------------------
class TestGlitchFilter:
    def test_drops_short_intervals(self):
        s = iset((0, 0.5), (2, 8))
        assert s.filter_glitches(1.0) == iset((2, 8))

    def test_does_not_merge_across_removed_glitch(self):
        # Pessimism: survivors stay disjoint.
        s = iset((0, 5), (5.5, 5.8), (6.5, 10))
        out = s.filter_glitches(1.0)
        assert out == iset((0, 5), (6.5, 10))
        assert len(out) == 2

    def test_zero_threshold_keeps_everything(self):
        s = iset((0, 0.1))
        assert s.filter_glitches(0.0) is s

    def test_exact_threshold_survives(self):
        assert not iset((0, 1.0)).filter_glitches(1.0).is_empty


# ----------------------------------------------------------------------
# Axis segmentation (Fig. 5 discretization support)
# ----------------------------------------------------------------------
class TestSegmentAxis:
    def test_basic(self):
        segs = segment_axis([2, 4], 0, 6)
        assert [(s.lo, s.hi) for s in segs] == [(0, 2), (2, 4), (4, 6)]

    def test_out_of_range_boundaries_ignored(self):
        segs = segment_axis([-5, 100], 0, 6)
        assert [(s.lo, s.hi) for s in segs] == [(0, 6)]

    def test_duplicates_collapsed(self):
        segs = segment_axis([3, 3.0, 3], 0, 6)
        assert len(segs) == 2

    def test_empty_window(self):
        assert segment_axis([1], 5, 5) == []


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
finite = st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                   allow_infinity=False)


@st.composite
def interval_sets(draw):
    pairs = draw(st.lists(st.tuples(finite, finite), max_size=8))
    return IntervalSet.from_pairs(
        (min(a, b), max(a, b)) for a, b in pairs)


@given(interval_sets(), interval_sets())
def test_union_commutes(a, b):
    assert a | b == b | a


@given(interval_sets(), interval_sets())
def test_intersection_commutes(a, b):
    assert (a & b) == (b & a)


@given(interval_sets(), interval_sets(), interval_sets())
def test_union_associates(a, b, c):
    assert (a | b) | c == a | (b | c)


@given(interval_sets(), interval_sets())
def test_demorgan_measures(a, b):
    # |A| + |B| = |A ∪ B| + |A ∩ B| (inclusion-exclusion on measures).
    lhs = a.measure + b.measure
    rhs = (a | b).measure + (a & b).measure
    assert lhs == pytest.approx(rhs, abs=1e-6)


@given(interval_sets(), interval_sets())
def test_difference_disjoint_from_subtrahend(a, b):
    assert ((a - b) & b).measure == pytest.approx(0.0, abs=1e-6)


@given(interval_sets(), interval_sets())
def test_difference_union_restores(a, b):
    assert ((a - b) | (a & b)) == a or (
        # Tolerate boundary-point differences from EPS merging.
        abs(((a - b) | (a & b)).measure - a.measure) < 1e-6)


@given(interval_sets(), finite)
def test_shift_preserves_measure(s, d):
    assert s.shifted(d).measure == pytest.approx(s.measure, rel=1e-9, abs=1e-9)


@given(interval_sets(), finite, finite)
def test_clip_is_subset(s, lo, hi):
    lo, hi = min(lo, hi), max(lo, hi)
    clipped = s.clipped(lo, hi)
    assert clipped.measure <= s.measure + 1e-9
    for iv in clipped:
        assert iv.lo >= lo - EPS and iv.hi <= hi + EPS


@given(interval_sets(), st.floats(min_value=0.01, max_value=100))
def test_glitch_filter_only_removes(s, threshold):
    out = s.filter_glitches(threshold)
    assert out.measure <= s.measure + 1e-9
    for iv in out:
        assert iv.length + EPS >= threshold


@given(interval_sets())
def test_normal_form_disjoint_sorted(s):
    ivs = s.intervals
    for a, b in zip(ivs, ivs[1:]):
        assert a.hi < b.lo - EPS or b.lo - a.hi > EPS

# ----------------------------------------------------------------------
# IntervalAccumulator
# ----------------------------------------------------------------------
class TestIntervalAccumulator:
    def test_build_equals_repeated_union(self):
        from repro.utils.intervals import IntervalAccumulator

        sets = [iset((0, 2), (5, 7)), iset((1, 3)), iset((6, 9), (10, 11))]
        acc = IntervalAccumulator()
        expected = IntervalSet()
        for s in sets:
            acc.add(s)
            expected = expected.union(s)
        assert acc.build() == expected

    def test_empty_build_is_canonical_empty(self):
        from repro.utils.intervals import IntervalAccumulator

        acc = IntervalAccumulator()
        assert acc.is_empty
        built = acc.build()
        assert built.is_empty
        # Empty accumulators share the module-level empty set.
        assert built is IntervalAccumulator().build()

    def test_add_interval_and_iterables(self):
        from repro.utils.intervals import IntervalAccumulator

        acc = IntervalAccumulator()
        acc.add_interval(0.0, 1.0)
        acc.add([Interval(0.5, 2.0)])
        assert not acc.is_empty
        assert acc.build() == iset((0, 2))

    @given(st.lists(st.lists(
        st.tuples(st.floats(0, 50), st.floats(0, 50)), max_size=4),
        max_size=5))
    def test_property_matches_union(self, groups):
        from repro.utils.intervals import IntervalAccumulator

        sets = [IntervalSet.from_pairs(
            [(min(a, b), max(a, b)) for a, b in g]) for g in groups]
        acc = IntervalAccumulator()
        expected = IntervalSet()
        for s in sets:
            acc.add(s)
            expected = expected.union(s)
        assert acc.build() == expected
