"""Tests for the Liberty subset reader/writer."""

from __future__ import annotations

import pytest

from repro.netlist.cells import nangate45_like
from repro.netlist.liberty import (
    LibertyParseError,
    load_liberty,
    parse_liberty,
    save_liberty,
    write_liberty,
)


class TestRoundTrip:
    def test_default_library_round_trip(self):
        lib = nangate45_like()
        again = parse_liberty(write_liberty(lib))
        assert again.name == lib.name
        assert set(again.cells) == set(lib.cells)
        for name, spec in lib.cells.items():
            spec2 = again.cells[name]
            assert spec2.kind == spec.kind
            assert spec2.max_inputs == spec.max_inputs
            assert spec2.base_rise == pytest.approx(spec.base_rise, abs=1e-3)
            assert spec2.base_fall == pytest.approx(spec.base_fall, abs=1e-3)
            assert spec2.pin_spread == pytest.approx(spec.pin_spread)
            assert spec2.load_rise == pytest.approx(spec.load_rise)

    def test_pin_delays_equivalent_after_round_trip(self):
        lib = nangate45_like()
        again = parse_liberty(write_liberty(lib))
        nand3 = lib.choose("NAND", 3)
        nand3b = again.choose("NAND", 3)
        for pin in range(3):
            for fanout in (1, 4):
                assert nand3b.pin_delay(pin, fanout) == pytest.approx(
                    nand3.pin_delay(pin, fanout), abs=1e-2)

    def test_file_round_trip(self, tmp_path):
        lib = nangate45_like()
        path = tmp_path / "lib.lib"
        save_liberty(lib, path)
        assert load_liberty(path).name == lib.name


class TestParser:
    def test_no_library_group(self):
        with pytest.raises(LibertyParseError, match="no library"):
            parse_liberty("cell (X) { }")

    def test_cell_without_function(self):
        text = """library (l) { cell (X) {
            pin (in0) { timing () { cell_rise : 1.0; cell_fall : 1.0; } }
        } }"""
        with pytest.raises(LibertyParseError, match="no function"):
            parse_liberty(text)

    def test_cell_without_pins(self):
        text = 'library (l) { cell (X) { function : "AND"; } }'
        with pytest.raises(LibertyParseError, match="no pin in0"):
            parse_liberty(text)

    def test_unbalanced_braces(self):
        text = 'library (l) { cell (X) { function : "AND"; '
        with pytest.raises(LibertyParseError, match="unbalanced"):
            parse_liberty(text)

    def test_defaults_applied(self):
        text = """library (l) { cell (X) {
            function : "AND";
            pin (in0) { timing () { cell_rise : 9.0; cell_fall : 8.0; } }
        } }"""
        lib = parse_liberty(text)
        spec = lib.cells["X"]
        assert spec.load_rise == 1.6  # default
        assert spec.base_rise == 9.0

    def test_usable_by_circuit(self, tmp_path):
        """A parsed library drives delay assignment end to end."""
        from repro.netlist.bench import parse_bench
        lib = parse_liberty(write_liberty(nangate45_like()))
        c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
                        library=lib)
        assert c.gate_by_name("y").cell == "NAND2_X1"
