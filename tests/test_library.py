"""Tests for the benchmark library / paper suite."""

from __future__ import annotations

import pytest

from repro.circuits.library import (
    PAPER_SUITE,
    QUICK_SUITE_NAMES,
    embedded_circuit,
    paper_suite,
    scaled_profile,
    suite_circuit,
    suite_entry,
    synthetic_entry,
    synthetic_suite,
)


class TestEmbedded:
    def test_s27(self):
        c = embedded_circuit("s27")
        assert (c.num_gates, c.num_ffs) == (10, 3)

    def test_c17(self):
        c = embedded_circuit("c17")
        assert (c.num_gates, c.num_ffs) == (6, 0)

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown embedded"):
            embedded_circuit("s38584")


class TestSuite:
    def test_twelve_circuits(self):
        assert len(PAPER_SUITE) == 12
        assert [e.name for e in PAPER_SUITE[:3]] == ["s9234", "s13207", "s15850"]

    def test_quick_suite_subset(self):
        names = {e.name for e in PAPER_SUITE}
        assert set(QUICK_SUITE_NAMES) <= names

    def test_selection_preserves_order(self):
        sel = paper_suite(["p89k", "s9234"])
        assert [e.name for e in sel] == ["s9234", "p89k"]

    def test_unknown_selection(self):
        with pytest.raises(KeyError):
            paper_suite(["b19"])

    def test_paper_statistics_embedded(self):
        by_name = {e.name: e for e in PAPER_SUITE}
        assert by_name["s9234"].paper_gates == 1766
        assert by_name["p141k"].paper_ffs == 10501

    def test_scaling(self):
        full = scaled_profile("s9234", scale=1.0)
        half = scaled_profile("s9234", scale=0.5)
        assert half.n_gates < full.n_gates
        assert half.n_ffs < full.n_ffs

    def test_pattern_budget_scales(self):
        e = paper_suite(["p45k"])[0]
        assert e.pattern_budget(scale=0.5) < e.pattern_budget(scale=1.0)
        assert e.pattern_budget(scale=0.01) >= 8

    def test_suite_circuit_generates(self):
        c = suite_circuit("s9234", scale=0.5)
        assert c.name == "s9234"
        assert c.is_finalized

    def test_gain_knob_reflects_paper(self):
        """Circuits with tiny paper gains carry no endpoint side logic."""
        by_name = {e.name: e for e in PAPER_SUITE}
        assert by_name["s35932"].endpoint_side_gates == 0
        assert by_name["p78k"].endpoint_side_gates == 0
        assert by_name["p89k"].endpoint_side_gates >= 3


class TestSynthetic:
    def test_entries_are_deterministic(self):
        assert synthetic_entry(7) == synthetic_entry(7)
        assert synthetic_entry(7) != synthetic_entry(8)

    def test_names_are_self_describing(self):
        e = synthetic_entry(42)
        assert e.name == "syn0042"
        # A worker can rebuild the exact entry from the name alone.
        assert suite_entry("syn0042") == e

    def test_suite_scales_to_hundreds_of_circuits(self):
        entries = synthetic_suite(200)
        assert len(entries) == 200
        assert len({e.name for e in entries}) == 200
        assert len({e.seed for e in entries}) == 200

    def test_suite_start_offset(self):
        assert synthetic_suite(3, start=10)[0] == synthetic_entry(10)

    def test_tiers_produce_heterogeneous_sizes(self):
        gates = [e.gates for e in synthetic_suite(60)]
        assert min(gates) < 100 < max(gates)

    def test_entries_generate_finalized_circuits(self):
        c = suite_circuit("syn0003", scale=0.5)
        assert c.name == "syn0003"
        assert c.is_finalized

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            synthetic_entry(-1)

    def test_suite_entry_resolves_paper_and_synthetic(self):
        assert suite_entry("s9234") is PAPER_SUITE[0]
        assert suite_entry("syn0000").name == "syn0000"
        with pytest.raises(KeyError, match="unknown suite circuit"):
            suite_entry("nope")
        with pytest.raises(KeyError):
            suite_entry("syn12x")  # malformed index is not synthetic
