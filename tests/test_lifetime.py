"""Tests for the lifetime simulator."""

from __future__ import annotations

import pytest

from repro.aging.degradation import AgingScenario
from repro.aging.lifetime import LifetimeSimulator
from repro.aging.marginal import inject_marginal_defects
from repro.monitors.insertion import insert_monitors
from repro.monitors.monitor import MonitorConfigSet
from repro.timing.clock import ClockSpec
from repro.timing.sta import run_sta


@pytest.fixture(scope="module")
def lifetime_setup():
    from repro.circuits.library import embedded_circuit
    circuit = embedded_circuit("s27")
    sta = run_sta(circuit)
    clock = ClockSpec(sta.clock_period)
    configs = MonitorConfigSet.paper_default(clock.t_nom)
    placement = insert_monitors(circuit, sta, configs, fraction=1.0)
    return circuit, clock, placement


@pytest.fixture(scope="module")
def wearout_result(lifetime_setup):
    circuit, clock, placement = lifetime_setup
    sim = LifetimeSimulator(circuit, clock, placement,
                            scenario=AgingScenario(seed=2),
                            workload_patterns=6, seed=3)
    return sim.run([0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0])


class TestLifetime:
    def test_needs_some_model(self, lifetime_setup):
        circuit, clock, placement = lifetime_setup
        with pytest.raises(ValueError):
            LifetimeSimulator(circuit, clock, placement)

    def test_times_must_ascend(self, lifetime_setup):
        circuit, clock, placement = lifetime_setup
        sim = LifetimeSimulator(circuit, clock, placement,
                                scenario=AgingScenario(seed=1))
        with pytest.raises(ValueError):
            sim.run([2.0, 1.0])

    def test_slack_decreases(self, wearout_result):
        slacks = [p.slack for p in wearout_result.points]
        assert all(a >= b - 1e-9 for a, b in zip(slacks, slacks[1:]))

    def test_critical_path_grows(self, wearout_result):
        cpls = [p.critical_path for p in wearout_result.points]
        assert cpls == sorted(cpls)

    def test_failure_time_matches_first_negative_slack(self, wearout_result):
        ft = wearout_result.failure_time
        for p in wearout_result.points:
            if p.t == ft:
                assert p.failed
            elif ft is not None and p.t < ft:
                assert not p.failed

    def test_wide_guard_band_alerts_first(self, wearout_result):
        """Larger delay element = wider detection window = earlier alert."""
        delays = wearout_result.config_delays
        first = [wearout_result.first_alert_time(ci)
                 for ci in range(len(delays))]
        seen = [(d, t) for d, t in zip(delays, first) if t is not None]
        for (d_small, t_small), (d_large, t_large) in zip(seen, seen[1:]):
            assert d_small < d_large
            assert t_large <= t_small

    def test_margin_series_shape(self, wearout_result):
        series = wearout_result.margin_series()
        assert len(series) == len(wearout_result.points)
        assert all(isinstance(t, float) for t, _s in series)

    def test_marginal_device_fails_earlier(self, lifetime_setup):
        circuit, clock, placement = lifetime_setup
        times = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        healthy = LifetimeSimulator(
            circuit, clock, placement, scenario=AgingScenario(seed=2),
            workload_patterns=4, seed=3).run(times)
        weak = LifetimeSimulator(
            circuit, clock, placement, scenario=AgingScenario(seed=2),
            marginal=inject_marginal_defects(circuit, count=3, seed=4),
            workload_patterns=4, seed=3).run(times)
        for h, w in zip(healthy.points, weak.points):
            assert w.critical_path >= h.critical_path - 1e-9
        if healthy.failure_time is not None and weak.failure_time is not None:
            assert weak.failure_time <= healthy.failure_time
