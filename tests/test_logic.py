"""Tests for two- and three-valued gate evaluation."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.netlist.circuit import GateKind
from repro.simulation.logic import X, controlling_value, eval_binary, eval_ternary, inversion_parity

ALL_KINDS = [GateKind.AND, GateKind.NAND, GateKind.OR, GateKind.NOR,
             GateKind.XOR, GateKind.XNOR]


class TestBinary:
    @pytest.mark.parametrize("kind,table", [
        (GateKind.AND, {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
        (GateKind.NAND, {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
        (GateKind.OR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
        (GateKind.NOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
        (GateKind.XOR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
        (GateKind.XNOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
    ])
    def test_two_input_truth_tables(self, kind, table):
        for inputs, expected in table.items():
            assert eval_binary(kind, inputs) == expected

    def test_not_buf(self):
        assert eval_binary(GateKind.NOT, [0]) == 1
        assert eval_binary(GateKind.NOT, [1]) == 0
        assert eval_binary(GateKind.BUF, [0]) == 0
        assert eval_binary(GateKind.BUF, [1]) == 1

    def test_wide_gates(self):
        assert eval_binary(GateKind.AND, [1, 1, 1, 1]) == 1
        assert eval_binary(GateKind.AND, [1, 1, 0, 1]) == 0
        assert eval_binary(GateKind.XOR, [1, 1, 1]) == 1

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            eval_binary("MUX", [0, 1])


class TestTernary:
    def test_controlling_value_decides(self):
        assert eval_ternary(GateKind.AND, [0, X]) == 0
        assert eval_ternary(GateKind.NAND, [0, X]) == 1
        assert eval_ternary(GateKind.OR, [1, X]) == 1
        assert eval_ternary(GateKind.NOR, [1, X]) == 0

    def test_x_propagates(self):
        assert eval_ternary(GateKind.AND, [1, X]) == X
        assert eval_ternary(GateKind.OR, [0, X]) == X
        assert eval_ternary(GateKind.XOR, [1, X]) == X
        assert eval_ternary(GateKind.NOT, [X]) == X
        assert eval_ternary(GateKind.BUF, [X]) == X

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            eval_ternary("MAJ", [0, 1])

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_agrees_with_binary_when_specified(self, kind):
        for inputs in itertools.product((0, 1), repeat=3):
            if kind in (GateKind.XOR, GateKind.XNOR) or True:
                assert eval_ternary(kind, inputs) == eval_binary(kind, inputs)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_x_output_consistent_with_both_resolutions(self, kind):
        """If ternary says X, both 0 and 1 must be reachable by filling Xs;
        if it says 0/1, every filling must produce that value."""
        for inputs in itertools.product((0, 1, X), repeat=2):
            result = eval_ternary(kind, inputs)
            fillings = set()
            x_pos = [i for i, v in enumerate(inputs) if v == X]
            for fill in itertools.product((0, 1), repeat=len(x_pos)):
                filled = list(inputs)
                for pos, v in zip(x_pos, fill):
                    filled[pos] = v
                fillings.add(eval_binary(kind, filled))
            if result == X:
                assert fillings == {0, 1}
            else:
                assert fillings == {result}


class TestHelpers:
    def test_controlling_values(self):
        assert controlling_value(GateKind.AND) == 0
        assert controlling_value(GateKind.NAND) == 0
        assert controlling_value(GateKind.OR) == 1
        assert controlling_value(GateKind.NOR) == 1
        assert controlling_value(GateKind.XOR) is None

    def test_inversion_parity(self):
        assert inversion_parity(GateKind.NAND)
        assert inversion_parity(GateKind.NOT)
        assert not inversion_parity(GateKind.AND)


@given(st.sampled_from(ALL_KINDS),
       st.lists(st.integers(0, 1), min_size=2, max_size=4))
def test_binary_matches_python_semantics(kind, values):
    expected = {
        GateKind.AND: int(all(values)),
        GateKind.NAND: int(not all(values)),
        GateKind.OR: int(any(values)),
        GateKind.NOR: int(not any(values)),
        GateKind.XOR: sum(values) % 2,
        GateKind.XNOR: 1 - sum(values) % 2,
    }[kind]
    assert eval_binary(kind, values) == expected
