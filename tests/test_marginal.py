"""Tests for marginal (early-life) device modeling."""

from __future__ import annotations

import pytest

from repro.aging.marginal import MarginalDeviceModel, inject_marginal_defects
from repro.timing.variation import fault_size_for_gate


class TestModel:
    def test_initial_extra_delay_is_delta0(self):
        m = MarginalDeviceModel(weak_gates={3: 20.0})
        assert m.extra_delay(3, 0.0) == pytest.approx(20.0)

    def test_growth_over_time(self):
        m = MarginalDeviceModel(weak_gates={3: 20.0}, growth=1.0, accel=1.0)
        assert m.extra_delay(3, 2.0) == pytest.approx(60.0)

    def test_strong_gates_unaffected(self):
        m = MarginalDeviceModel(weak_gates={3: 20.0})
        assert m.extra_delay(4, 5.0) == 0.0

    def test_monotone(self):
        m = MarginalDeviceModel(weak_gates={0: 10.0})
        values = [m.extra_delay(0, t) for t in (0, 1, 2, 5)]
        assert values == sorted(values)

    def test_delay_factors_relative(self, s27):
        gate = s27.combinational_gates()[0]
        m = MarginalDeviceModel(weak_gates={gate: 10.0})
        factors = m.delay_factors(s27, 0.0)
        base = s27.gates[gate].max_delay()
        assert factors[gate] == pytest.approx(1.0 + 10.0 / base)


class TestInjection:
    def test_count_and_determinism(self, s27):
        a = inject_marginal_defects(s27, count=3, seed=7)
        b = inject_marginal_defects(s27, count=3, seed=7)
        assert a.weak_gates == b.weak_gates
        assert len(a.weak_gates) == 3

    def test_sized_at_six_sigma(self, s27):
        m = inject_marginal_defects(s27, count=2, seed=1)
        for gate, delta in m.weak_gates.items():
            assert delta == pytest.approx(fault_size_for_gate(s27, gate))

    def test_only_combinational_gates(self, s27):
        m = inject_marginal_defects(s27, count=5, seed=2)
        comb = set(s27.combinational_gates())
        assert set(m.weak_gates) <= comb

    def test_too_many_rejected(self, s27):
        with pytest.raises(ValueError):
            inject_marginal_defects(s27, count=10_000, seed=0)
