"""Tests for alert-driven aging mitigation."""

from __future__ import annotations

import pytest

from repro.aging.degradation import AgingScenario
from repro.aging.lifetime import LifetimeSimulator
from repro.aging.mitigation import (
    AdaptiveLifetimeSimulator,
    MitigationPolicy,
)
from repro.monitors.insertion import insert_monitors
from repro.monitors.monitor import MonitorConfigSet
from repro.timing.clock import ClockSpec
from repro.timing.sta import run_sta

TIMES = [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64]


@pytest.fixture(scope="module")
def setup():
    from repro.circuits.library import embedded_circuit
    circuit = embedded_circuit("s27")
    sta = run_sta(circuit)
    clock = ClockSpec(1.15 * sta.critical_path)
    configs = MonitorConfigSet.paper_default(clock.t_nom)
    placement = insert_monitors(circuit, sta, configs, fraction=1.0)
    return circuit, clock, placement


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            MitigationPolicy(clock_stretch=0.9)
        with pytest.raises(ValueError):
            MitigationPolicy(stress_derate=0.0)
        with pytest.raises(ValueError):
            MitigationPolicy(stress_derate=1.5)


class TestAdaptiveSimulation:
    @pytest.fixture(scope="class")
    def runs(self, setup):
        circuit, clock, placement = setup
        scenario = AgingScenario(seed=2)
        adaptive = AdaptiveLifetimeSimulator(
            circuit, clock, placement, scenario=scenario,
            policy=MitigationPolicy(clock_stretch=1.08, stress_derate=0.5,
                                    max_actions=3),
            workload_patterns=12, seed=3).run(TIMES)
        passive = LifetimeSimulator(
            circuit, clock, placement, scenario=scenario,
            workload_patterns=12, seed=3).run(TIMES)
        return adaptive, passive

    def test_times_must_ascend(self, setup):
        circuit, clock, placement = setup
        sim = AdaptiveLifetimeSimulator(circuit, clock, placement,
                                        scenario=AgingScenario(seed=1))
        with pytest.raises(ValueError):
            sim.run([2.0, 1.0])

    def test_mitigation_extends_lifetime(self, runs):
        adaptive, passive = runs
        t_adaptive = adaptive.failure_time
        t_passive = passive.failure_time
        if t_passive is not None:
            assert t_adaptive is None or t_adaptive >= t_passive

    def test_actions_bounded(self, runs):
        adaptive, _ = runs
        assert adaptive.total_actions <= 3

    def test_clock_only_stretches(self, runs):
        adaptive, _ = runs
        periods = [p for _t, p in adaptive.clock_trajectory()]
        assert all(b >= a - 1e-9 for a, b in zip(periods, periods[1:]))

    def test_config_steps_down_after_alerts(self, runs):
        adaptive, _ = runs
        configs = [p.config for p in adaptive.points]
        assert configs[0] == 3  # starts at the widest guard band
        assert all(b <= a for a, b in zip(configs, configs[1:]))
        if adaptive.total_actions:
            assert min(configs) < 3

    def test_alert_triggers_action(self, runs):
        adaptive, _ = runs
        for a, b in zip(adaptive.points, adaptive.points[1:]):
            if a.alert and a.actions_taken < 3:
                assert b.actions_taken == a.actions_taken + 1

    def test_stress_derate_slows_cpl_growth(self, setup):
        circuit, clock, placement = setup
        scenario = AgingScenario(seed=2)
        strong = AdaptiveLifetimeSimulator(
            circuit, clock, placement, scenario=scenario,
            policy=MitigationPolicy(stress_derate=0.3, clock_stretch=1.0),
            workload_patterns=4, seed=3).run(TIMES)
        weak = AdaptiveLifetimeSimulator(
            circuit, clock, placement, scenario=scenario,
            policy=MitigationPolicy(stress_derate=1.0, clock_stretch=1.0),
            workload_patterns=4, seed=3).run(TIMES)
        # Same clock, but derated stress ages strictly slower at the end.
        assert strong.points[-1].critical_path <= \
            weak.points[-1].critical_path + 1e-9
