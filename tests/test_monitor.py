"""Tests for the programmable delay monitor hardware model (Fig. 2)."""

from __future__ import annotations

import pytest

from repro.monitors.monitor import (
    PAPER_DELAY_FRACTIONS,
    MonitorBank,
    MonitorConfigSet,
    ProgrammableDelayMonitor,
)
from repro.simulation.waveform import Waveform


class TestConfigSet:
    def test_paper_default(self):
        cfg = MonitorConfigSet.paper_default(300.0)
        assert len(cfg) == 4
        assert cfg[0] == pytest.approx(15.0)
        assert cfg.largest == pytest.approx(100.0)
        assert list(cfg) == sorted(cfg)

    def test_fractions_constant(self):
        assert PAPER_DELAY_FRACTIONS == (0.05, 0.10, 0.15, 1.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MonitorConfigSet(())
        with pytest.raises(ValueError):
            MonitorConfigSet((0.0, 1.0))
        with pytest.raises(ValueError):
            MonitorConfigSet((2.0, 1.0))

    def test_index_of(self):
        cfg = MonitorConfigSet((1.0, 2.0, 4.0))
        assert cfg.index_of(2.0) == 1
        with pytest.raises(ValueError):
            cfg.index_of(3.0)


class TestMonitorCapture:
    @pytest.fixture()
    def monitor(self):
        return ProgrammableDelayMonitor(
            name="m0", gate=0, configs=MonitorConfigSet((10.0, 50.0)),
            selected=1)

    def test_selection(self, monitor):
        assert monitor.delay == 50.0
        monitor.select(0)
        assert monitor.delay == 10.0
        with pytest.raises(ValueError):
            monitor.select(2)

    def test_bad_initial_selection(self):
        with pytest.raises(ValueError):
            ProgrammableDelayMonitor("m", 0, MonitorConfigSet((1.0,)),
                                     selected=5)

    def test_stable_signal_no_alert(self, monitor):
        # Fig. 2b: signal settles before the detection window opens.
        wave = Waveform(0, [(100.0, 1)])
        assert not monitor.alert(wave, t_capture=300.0)

    def test_late_transition_alerts(self, monitor):
        # Fig. 2b: degraded signal toggles inside the 50 ps guard band.
        wave = Waveform(0, [(280.0, 1)])
        assert monitor.alert(wave, t_capture=300.0)
        assert monitor.main_value(wave, 300.0) == 1
        assert monitor.shadow_value(wave, 300.0) == 0

    def test_smaller_delay_tolerates_more(self, monitor):
        # Fig. 2c: after switching to the small element the same late
        # transition no longer violates the narrow window.
        wave = Waveform(0, [(280.0, 1)])
        monitor.select(0)  # 10 ps window
        assert not monitor.alert(wave, t_capture=300.0)

    def test_even_toggle_count_escapes_xor(self, monitor):
        # A pulse inside the window leaves main == shadow, XOR misses it...
        wave = Waveform(0, [(260.0, 1), (290.0, 0)])
        assert not monitor.alert(wave, t_capture=300.0)
        # ...but the strict stability check reports it.
        assert monitor.window_violation(wave, t_capture=300.0)

    def test_hdf_detection_via_delay_shift(self):
        """Fig. 2d: a fault observable only before t_min becomes visible to
        the shadow register at nominal speed under a large delay element."""
        t_nom = 300.0
        configs = MonitorConfigSet.paper_default(t_nom)
        mon = ProgrammableDelayMonitor("m", 0, configs, selected=3)  # t/3
        # Fault-free settles at 190 ps, faulty at 210 ps: the difference
        # window [190, 210) lies below t_min = 100... relative to FAST it
        # requires capture before 210 ps, unreachable at nominal speed.
        good = Waveform(0, [(190.0, 1)])
        bad = Waveform(0, [(210.0, 1)])
        # Standard FF at t_nom sees no difference...
        assert good.value_at(t_nom) == bad.value_at(t_nom)
        # ...but the shadow register with delay1 = t_nom/3 samples the
        # signal at 200 ps, inside the difference window:
        assert mon.shadow_value(good, t_nom) != mon.shadow_value(bad, t_nom)
        # A small delay element (Delay4 = 15 ps) misses the fault (Fig. 2d).
        mon.select(0)
        assert mon.shadow_value(good, t_nom) == mon.shadow_value(bad, t_nom)


class TestBank:
    def test_select_all(self):
        cfg = MonitorConfigSet((5.0, 20.0))
        bank = MonitorBank([
            ProgrammableDelayMonitor(f"m{i}", gate=i, configs=cfg)
            for i in range(3)])
        bank.select_all(1)
        assert all(m.selected == 1 for m in bank)

    def test_alerts_vector(self):
        cfg = MonitorConfigSet((50.0,))
        bank = MonitorBank([
            ProgrammableDelayMonitor("m0", gate=0, configs=cfg),
            ProgrammableDelayMonitor("m1", gate=1, configs=cfg)])
        waves = [Waveform(0, [(280.0, 1)]), Waveform(0, [(10.0, 1)])]
        assert bank.alerts(waves, 300.0) == [True, False]
        assert bank.any_alert(waves, 300.0)
        assert bank.gates() == frozenset({0, 1})
