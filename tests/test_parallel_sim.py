"""Tests for the bit-parallel logic simulator."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.faults.models import FaultSite, StuckAtFault
from repro.faults.universe import fault_sites
from repro.netlist.circuit import GateKind
from repro.simulation.logic import eval_binary
from repro.simulation.parallel_sim import BitParallelSimulator


class TestSimulate:
    def test_matches_scalar_eval_exhaustive_c17(self, c17):
        sim = BitParallelSimulator(c17)
        vectors = list(itertools.product((0, 1), repeat=5))
        words, width = sim.pack_vectors(vectors)
        values = sim.simulate(words, width)
        srcs = c17.sources()
        for p, vec in enumerate(vectors):
            static = {}
            for idx in c17.topo_order:
                g = c17.gates[idx]
                if GateKind.is_source(g.kind):
                    static[idx] = vec[srcs.index(idx)]
                else:
                    static[idx] = eval_binary(
                        g.kind, [static[s] for s in g.fanin])
            for idx in c17.topo_order:
                assert values[idx] >> p & 1 == static[idx]

    def test_random_vectors_s27(self, s27):
        sim = BitParallelSimulator(s27)
        rng = random.Random(0)
        srcs = s27.sources()
        vectors = [tuple(rng.randint(0, 1) for _ in srcs) for _ in range(64)]
        words, width = sim.pack_vectors(vectors)
        values = sim.simulate(words, width)
        for p in (0, 17, 63):
            static = {}
            for idx in s27.topo_order:
                g = s27.gates[idx]
                if GateKind.is_source(g.kind):
                    static[idx] = vectors[p][srcs.index(idx)]
                else:
                    static[idx] = eval_binary(
                        g.kind, [static[s] for s in g.fanin])
            assert all(values[i] >> p & 1 == static[i] for i in s27.topo_order)

    def test_pack_rejects_x(self, s27):
        sim = BitParallelSimulator(s27)
        vec = [2] * len(s27.sources())
        with pytest.raises(ValueError):
            sim.pack_vectors([vec])

    def test_pack_rejects_wrong_width(self, s27):
        sim = BitParallelSimulator(s27)
        with pytest.raises(ValueError):
            sim.pack_vectors([(0, 1)])


class TestStuckAtDetection:
    def brute_force_mask(self, circuit, fault, vectors):
        """Reference: per-pattern scalar simulation of good and faulty."""
        srcs = circuit.sources()
        mask = 0
        for p, vec in enumerate(vectors):
            def run(faulted):
                values = {}
                for idx in circuit.topo_order:
                    g = circuit.gates[idx]
                    if GateKind.is_source(g.kind):
                        values[idx] = vec[srcs.index(idx)]
                        continue
                    ins = [values[s] for s in g.fanin]
                    if faulted and not fault.site.is_output_pin \
                            and idx == fault.site.gate:
                        ins[fault.site.pin] = fault.value
                    v = eval_binary(g.kind, ins)
                    if faulted and fault.site.is_output_pin \
                            and idx == fault.site.gate:
                        v = fault.value
                    values[idx] = v
                return values
            good = run(False)
            bad = run(True)
            obs = {op.gate for op in circuit.observation_points()}
            if any(good[o] != bad[o] for o in obs):
                mask |= 1 << p
        return mask

    @pytest.mark.parametrize("circuit_name", ["c17", "s27"])
    def test_against_brute_force(self, circuit_name, c17, s27):
        circuit = {"c17": c17, "s27": s27}[circuit_name]
        sim = BitParallelSimulator(circuit)
        rng = random.Random(1)
        srcs = circuit.sources()
        vectors = [tuple(rng.randint(0, 1) for _ in srcs) for _ in range(32)]
        words, width = sim.pack_vectors(vectors)
        good = sim.simulate(words, width)
        for site in fault_sites(circuit):
            for value in (0, 1):
                fault = StuckAtFault(site, value)
                fast = sim.stuck_at_detect_mask(good, fault, width)
                slow = self.brute_force_mask(circuit, fault, vectors)
                assert fast == slow, fault.describe(circuit)

    def test_undetectable_when_site_already_stuck(self, c17):
        sim = BitParallelSimulator(c17)
        # With all inputs 0, every NAND output is 1: SA1 at outputs silent.
        vectors = [tuple([0] * 5)]
        words, width = sim.pack_vectors(vectors)
        good = sim.simulate(words, width)
        g = c17.index_of("N10")
        assert sim.stuck_at_detect_mask(
            good, StuckAtFault(FaultSite(g), 1), width) == 0
