"""Word-matrix kernels of BitParallelSimulator vs the seed big-int API.

The matrix layer (``pack_vectors_words`` / ``simulate_words`` /
``stuck_at_detect_words``) must reproduce the big-int path bit for bit —
same little-endian word convention as :mod:`repro.utils.bitset`, same
detect masks for every fault — across word boundaries and batch sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg.patterns import random_test_set
from repro.atpg.transition import transition_fault_list
from repro.simulation.parallel_sim import (
    BitParallelSimulator,
    mask_row,
    num_words,
    row_to_mask,
)


def _workload(circuit, count, seed=3):
    ts = random_test_set(circuit, count, seed=seed)
    vectors = [p.capture for p in ts]
    sim = BitParallelSimulator(circuit)
    saf = [f.as_stuck_at() for f in transition_fault_list(circuit)]
    return sim, vectors, saf


class TestWordHelpers:
    def test_num_words(self):
        assert [num_words(w) for w in (1, 64, 65, 128, 129)] == [1, 1, 2, 2, 3]

    @pytest.mark.parametrize("width", [1, 63, 64, 65, 130])
    def test_mask_row_roundtrip(self, width):
        row = mask_row(width)
        assert row.dtype == np.uint64
        assert row_to_mask(row) == (1 << width) - 1


class TestMatrixVsBigInt:
    @pytest.mark.parametrize("count", [1, 7, 70])  # 70 → two words
    def test_pack_and_simulate_match(self, s27, count):
        sim, vectors, _ = _workload(s27, count)
        words, width = sim.pack_vectors(vectors)
        good = sim.simulate(words, width)
        matrix, mwidth = sim.pack_vectors_words(vectors)
        assert mwidth == width
        good_m = sim.simulate_words(matrix, width)
        for g in range(len(good)):
            assert row_to_mask(good_m[g]) == good[g], g

    @pytest.mark.parametrize("count", [3, 70])
    def test_stuck_at_detection_matches(self, s27, count):
        sim, vectors, saf = _workload(s27, count)
        words, width = sim.pack_vectors(vectors)
        good = sim.simulate(words, width)
        matrix, _ = sim.pack_vectors_words(vectors)
        good_m = sim.simulate_words(matrix, width)
        det = sim.stuck_at_detect_words(good_m, saf, width)
        for i, f in enumerate(saf):
            assert row_to_mask(det[i]) == \
                sim.stuck_at_detect_mask(good, f, width), f

    def test_batch_size_does_not_change_results(self, small_generated):
        sim, vectors, saf = _workload(small_generated, 11, seed=9)
        matrix, width = sim.pack_vectors_words(vectors)
        good_m = sim.simulate_words(matrix, width)
        full = sim.stuck_at_detect_words(good_m, saf, width)
        tiny = sim.stuck_at_detect_words(good_m, saf, width, batch=2)
        assert np.array_equal(full, tiny)

    def test_empty_fault_list(self, s27):
        sim, vectors, _ = _workload(s27, 4)
        matrix, width = sim.pack_vectors_words(vectors)
        good_m = sim.simulate_words(matrix, width)
        det = sim.stuck_at_detect_words(good_m, [], width)
        assert det.shape == (0, num_words(width))

    def test_generated_circuit_matches(self, small_generated):
        sim, vectors, saf = _workload(small_generated, 13, seed=4)
        words, width = sim.pack_vectors(vectors)
        good = sim.simulate(words, width)
        matrix, _ = sim.pack_vectors_words(vectors)
        good_m = sim.simulate_words(matrix, width)
        det = sim.stuck_at_detect_words(good_m, saf, width)
        mismatches = [
            f for i, f in enumerate(saf)
            if row_to_mask(det[i]) != sim.stuck_at_detect_mask(good, f, width)
        ]
        assert not mismatches
