"""Tests for path-oriented (timing-aware) test generation."""

from __future__ import annotations

import pytest

from repro.atpg.path_atpg import generate_path_tests, sensitize_path
from repro.atpg.podem import Podem
from repro.netlist.circuit import Circuit, GateKind
from repro.timing.paths import k_longest_paths


@pytest.fixture()
def chain():
    c = Circuit("pchain")
    a = c.add_input("a")
    g1 = c.add_gate("g1", GateKind.NOT, [a])
    g2 = c.add_gate("g2", GateKind.BUF, [g1])
    g3 = c.add_gate("g3", GateKind.NOT, [g2])
    c.mark_output(g3)
    return c.finalize()


class TestJustifyAll:
    def test_multiple_objectives_satisfied(self, c17):
        podem = Podem(c17, seed=0)
        n10, n16 = c17.index_of("N10"), c17.index_of("N16")
        assignment = podem.justify_all([(n10, 0), (n16, 1)])
        assert assignment is not None
        from repro.simulation.parallel_sim import BitParallelSimulator
        import random
        rng = random.Random(0)
        srcs = c17.sources()
        vec = tuple(assignment.get(s, rng.randint(0, 1)) for s in srcs)
        sim = BitParallelSimulator(c17)
        words, width = sim.pack_vectors([vec])
        good = sim.simulate(words, width)
        assert good[n10] == 0 and good[n16] == 1

    def test_conflicting_objectives_fail(self, chain):
        podem = Podem(chain, seed=0)
        g1, g2 = chain.index_of("g1"), chain.index_of("g2")
        # g2 buffers g1: demanding opposite values is unsatisfiable.
        assert podem.justify_all([(g1, 1), (g2, 0)]) is None

    def test_source_objectives_direct(self, chain):
        podem = Podem(chain, seed=0)
        a = chain.index_of("a")
        assert podem.justify_all([(a, 1)]) == {a: 1}
        g1 = chain.index_of("g1")
        out = podem.justify_all([(a, 1), (g1, 0)])
        assert out == {a: 1}

    def test_contradictory_source_values(self, chain):
        podem = Podem(chain, seed=0)
        a = chain.index_of("a")
        assert podem.justify_all([(a, 1), (a, 0)]) is None


class TestSensitize:
    def test_chain_path_exact(self, chain):
        path = k_longest_paths(chain, chain.index_of("g3"), 1)[0]
        pattern = sensitize_path(chain, path)
        assert pattern is not None
        from repro.simulation.wave_sim import WaveformSimulator
        res = WaveformSimulator(chain).simulate(pattern.launch,
                                                pattern.capture)
        wave = res.waveforms[chain.index_of("g3")]
        assert wave.num_transitions == 1
        assert wave.last_event_time == pytest.approx(path.length, rel=0.2)

    def test_requires_source_start(self, chain):
        from repro.timing.paths import TimingPath
        bad = TimingPath(gates=(chain.index_of("g1"),
                                chain.index_of("g2")), length=10.0)
        with pytest.raises(ValueError, match="source"):
            sensitize_path(chain, bad)


class TestGeneration:
    def test_s27_paths_all_verified(self, s27):
        result = generate_path_tests(s27, k_per_endpoint=2, seed=1)
        assert result.tests
        assert result.verified_fraction >= 0.75

    def test_generated_circuit_mostly_verified(self, small_generated):
        result = generate_path_tests(small_generated, k_per_endpoint=1,
                                     seed=1)
        assert result.tests
        # False paths legitimately fail sensitization; verified tests must
        # dominate among the sensitized ones.
        assert result.verified_fraction >= 0.6

    def test_endpoint_restriction(self, s27):
        endpoint = s27.observation_points()[0].gate
        result = generate_path_tests(s27, k_per_endpoint=3,
                                     endpoints=[endpoint], seed=1)
        for t in result.tests:
            assert t.path.gates[-1] == endpoint

    def test_test_set_export(self, s27):
        result = generate_path_tests(s27, k_per_endpoint=1, seed=1)
        ts = result.test_set(s27)
        assert len(ts) == len(result.tests)

    def test_deterministic(self, s27):
        a = generate_path_tests(s27, k_per_endpoint=2, seed=5)
        b = generate_path_tests(s27, k_per_endpoint=2, seed=5)
        assert [t.pattern for t in a.tests] == [t.pattern for t in b.tests]

    def test_unverified_counted_not_hidden(self, small_generated):
        result = generate_path_tests(small_generated, k_per_endpoint=2,
                                     seed=2)
        assert len(result.tests) + result.unsensitizable == sum(
            min(2, len(k_longest_paths(small_generated, op, 2)))
            for op in sorted({o.gate for o in
                              small_generated.observation_points()}))
