"""Tests for path statistics and critical-path extraction."""

from __future__ import annotations

import pytest

from repro.netlist.circuit import Circuit, GateKind
from repro.timing.paths import (
    endpoint_arrival_histogram,
    k_longest_paths,
    k_shortest_paths,
    short_path_fraction,
)
from repro.timing.sta import run_sta


@pytest.fixture()
def diamond():
    c = Circuit("diamond")
    a = c.add_input("a")
    l1 = c.add_gate("l1", GateKind.NOT, [a])
    l2 = c.add_gate("l2", GateKind.NOT, [l1])
    s1 = c.add_gate("s1", GateKind.BUF, [a])
    top = c.add_gate("top", GateKind.AND, [l2, s1])
    c.mark_output(top)
    return c.finalize()


class TestPathEnumeration:
    def test_longest_path_matches_sta(self, diamond):
        sta = run_sta(diamond)
        top = diamond.index_of("top")
        paths = k_longest_paths(diamond, top, 1)
        assert paths[0].length == pytest.approx(sta.arrival_max[top])

    def test_shortest_path_matches_sta(self, diamond):
        sta = run_sta(diamond)
        top = diamond.index_of("top")
        paths = k_shortest_paths(diamond, top, 1)
        assert paths[0].length == pytest.approx(sta.arrival_min[top])

    def test_paths_ordered(self, diamond):
        top = diamond.index_of("top")
        longest = k_longest_paths(diamond, top, 5)
        lengths = [p.length for p in longest]
        assert lengths == sorted(lengths, reverse=True)
        shortest = k_shortest_paths(diamond, top, 5)
        lengths = [p.length for p in shortest]
        assert lengths == sorted(lengths)

    def test_diamond_has_two_paths(self, diamond):
        top = diamond.index_of("top")
        paths = k_longest_paths(diamond, top, 10)
        assert len(paths) == 2
        names = {tuple(diamond.gates[g].name for g in p.gates)
                 for p in paths}
        assert ("a", "l1", "l2", "top") in names
        assert ("a", "s1", "top") in names

    def test_paths_start_at_sources(self, s27):
        sta = run_sta(s27)
        endpoint = max((op.gate for op in s27.observation_points()),
                       key=lambda g: sta.arrival_max[g])
        for p in k_longest_paths(s27, endpoint, 8):
            first = s27.gates[p.gates[0]]
            assert GateKind.is_source(first.kind)
            assert p.gates[-1] == endpoint

    def test_path_lengths_consistent_with_delays(self, s27):
        endpoint = s27.observation_points()[0].gate
        for p in k_longest_paths(s27, endpoint, 3):
            total = 0.0
            for prev, cur in zip(p.gates, p.gates[1:]):
                g = s27.gates[cur]
                pin = list(g.fanin).index(prev)
                total += max(g.pin_delays[pin])
            assert total == pytest.approx(p.length)

    def test_describe(self, diamond):
        top = diamond.index_of("top")
        text = k_longest_paths(diamond, top, 1)[0].describe(diamond)
        assert "->" in text and "ps" in text


class TestStatistics:
    def test_histogram_counts_all_ppos(self, small_generated):
        sta = run_sta(small_generated)
        hist = endpoint_arrival_histogram(small_generated, sta, bins=8)
        n_ppos = sum(1 for op in small_generated.observation_points()
                     if op.is_pseudo)
        assert sum(c for _lo, _hi, c in hist) == n_ppos
        assert len(hist) == 8

    def test_histogram_bins_cover_critical_path(self, small_generated):
        sta = run_sta(small_generated)
        hist = endpoint_arrival_histogram(small_generated, sta, bins=4)
        assert hist[0][0] == 0.0
        assert hist[-1][1] == pytest.approx(sta.critical_path)

    def test_histogram_bins_validated(self, small_generated):
        sta = run_sta(small_generated)
        with pytest.raises(ValueError):
            endpoint_arrival_histogram(small_generated, sta, bins=0)

    def test_short_path_fraction_bounds(self, small_generated):
        sta = run_sta(small_generated)
        assert short_path_fraction(small_generated, sta, 0.0) == 0.0
        assert short_path_fraction(
            small_generated, sta, sta.critical_path * 2) == 1.0

    def test_short_fraction_predicts_monitor_gain(self):
        """The generator knob that drives Table I gains shows up in the
        metric: more shallow PPOs -> larger short-path fraction."""
        from repro.circuits.generators import CircuitProfile, generate_circuit
        def frac(ppo_frac):
            profile = CircuitProfile(
                name=f"f{ppo_frac}", n_gates=80, n_ffs=20, n_inputs=10,
                n_outputs=4, depth=8, seed=3, endpoint_side_gates=0,
                short_path_ppo_fraction=ppo_frac)
            c = generate_circuit(profile)
            sta = run_sta(c)
            return short_path_fraction(c, sta, sta.clock_period / 3)
        assert frac(0.7) > frac(0.0)
