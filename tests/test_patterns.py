"""Tests for pattern containers."""

from __future__ import annotations

import random

import pytest

from repro.atpg.patterns import PatternPair, TestSet, random_test_set
from repro.simulation.logic import X


class TestPatternPair:
    def test_width_check(self):
        with pytest.raises(ValueError):
            PatternPair((0, 1), (0,))

    def test_value_check(self):
        with pytest.raises(ValueError):
            PatternPair((0, 3), (0, 1))

    def test_has_dont_cares(self):
        assert PatternPair((X, 0), (0, 0)).has_dont_cares
        assert not PatternPair((1, 0), (0, 0)).has_dont_cares

    def test_filled_deterministic(self):
        p = PatternPair((X, X, 1), (0, X, X))
        a = p.filled(random.Random(5))
        b = p.filled(random.Random(5))
        assert a == b
        assert not a.has_dont_cares
        assert a.launch[2] == 1 and a.capture[0] == 0

    def test_filled_noop_without_x(self):
        p = PatternPair((0, 1), (1, 0))
        assert p.filled(random.Random(0)) is p

    def test_merge_compatible(self):
        a = PatternPair((0, X), (X, 1))
        b = PatternPair((X, 1), (0, X))
        m = a.merged_with(b)
        assert m == PatternPair((0, 1), (0, 1))

    def test_merge_conflict(self):
        a = PatternPair((0,), (0,))
        b = PatternPair((1,), (0,))
        assert a.merged_with(b) is None

    def test_merge_width_mismatch(self):
        assert PatternPair((0,), (0,)).merged_with(
            PatternPair((0, 0), (0, 0))) is None


class TestTestSet:
    def test_width_enforced(self, s27):
        ts = TestSet(s27)
        with pytest.raises(ValueError):
            ts.append(PatternPair((0,), (1,)))

    def test_subset_preserves_order(self, s27):
        ts = random_test_set(s27, 10, seed=0)
        sub = ts.subset([3, 1, 7])
        assert sub[0] == ts[3] and sub[1] == ts[1] and sub[2] == ts[7]

    def test_filled_seeded(self, s27):
        width = len(s27.sources())
        ts = TestSet(s27, [PatternPair((X,) * width, (X,) * width)])
        assert ts.filled(seed=1).patterns == ts.filled(seed=1).patterns
        assert not ts.filled(seed=1)[0].has_dont_cares

    def test_random_test_set_deterministic(self, s27):
        a = random_test_set(s27, 5, seed=9)
        b = random_test_set(s27, 5, seed=9)
        assert a.patterns == b.patterns
        assert len(a) == 5

    def test_iteration(self, s27):
        ts = random_test_set(s27, 3, seed=0)
        assert len(list(ts)) == 3
