"""Stage-cache semantics: Merkle keys, targeted invalidation, recovery.

Flipping one semantic ``FlowConfig`` field must invalidate exactly the
stage that reads it plus its downstream closure — nothing upstream; the
worker-count knobs must invalidate nothing.  Corrupt or foreign cache
entries are treated as misses and repaired in place.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import DEFAULT_PIPELINE, FlowConfig, HdfTestFlow
from repro.core.stages import StageContext
from repro.experiments.artifact_cache import StageCache


def _keys(circuit, config, **ctx_kwargs):
    ctx = StageContext(circuit=circuit, config=config, **ctx_kwargs)
    return DEFAULT_PIPELINE.stage_keys(ctx)


ALL_STAGES = ("sta", "faults", "atpg", "simulation", "classify", "schedule")

#: (FlowConfig override, stage that reads the knob).
SEMANTIC_CASES = [
    ({"fast_ratio": 2.5}, "sta"),
    ({"monitor_fraction": 0.5}, "sta"),
    ({"monitor_delay_fractions": (0.1, 0.2)}, "sta"),
    ({"sigma_fraction": 0.25}, "faults"),
    ({"n_sigma": 5.0}, "faults"),
    ({"structural_prefilter": False}, "faults"),
    ({"atpg_seed": 11}, "atpg"),
    ({"pattern_cap": 5}, "atpg"),
    ({"engines": (("atpg", "reference"),)}, "atpg"),
    ({"inertial_ps": 7.0}, "simulation"),
    ({"engines": (("simulation", "reference"),)}, "simulation"),
    ({"ilp_time_limit": 1.0}, "schedule"),
    ({"coverage_targets": (0.9,)}, "schedule"),
]


class TestStageKeys:
    def test_deterministic(self, s27):
        assert _keys(s27, FlowConfig()) == _keys(s27, FlowConfig())

    def test_covers_every_stage(self, s27):
        assert tuple(_keys(s27, FlowConfig())) == ALL_STAGES

    @pytest.mark.parametrize("override,stage", SEMANTIC_CASES,
                             ids=[f"{next(iter(o))}->{s}"
                                  for o, s in SEMANTIC_CASES])
    def test_semantic_flip_invalidates_exactly_downstream(self, s27,
                                                          override, stage):
        base = _keys(s27, FlowConfig())
        flipped = _keys(s27, FlowConfig(**override))
        changed = {name for name in ALL_STAGES
                   if base[name] != flipped[name]}
        assert changed == DEFAULT_PIPELINE.descendants([stage])

    def test_job_knobs_change_nothing(self, s27):
        base = _keys(s27, FlowConfig())
        assert _keys(s27, FlowConfig(simulation_jobs=8,
                                     schedule_jobs=4)) == base

    def test_circuit_content_changes_every_key(self, s27, c17):
        a = _keys(s27, FlowConfig())
        b = _keys(c17, FlowConfig())
        assert all(a[name] != b[name] for name in ALL_STAGES)

    def test_schedule_flags_only_touch_schedule(self, s27):
        base = _keys(s27, FlowConfig())
        flagged = _keys(s27, FlowConfig(), with_coverage_schedules=True)
        changed = {name for name in ALL_STAGES
                   if base[name] != flagged[name]}
        assert changed == {"schedule"}

    def test_external_test_set_keys_by_content(self, s27):
        res = HdfTestFlow(s27).run(with_schedules=False)
        base = _keys(s27, FlowConfig())
        replayed = _keys(s27, FlowConfig(), test_set=res.test_set)
        changed = {name for name in ALL_STAGES
                   if base[name] != replayed[name]}
        assert changed == DEFAULT_PIPELINE.descendants(["atpg"])
        again = _keys(s27, FlowConfig(), test_set=res.test_set)
        assert again == replayed  # same patterns -> same keys


class TestDescendants:
    def test_closures(self):
        d = DEFAULT_PIPELINE.descendants
        assert d(["schedule"]) == {"schedule"}
        assert d(["classify"]) == {"classify", "schedule"}
        assert d(["atpg"]) == {"atpg", "simulation", "classify", "schedule"}
        assert d(["sta"]) == set(ALL_STAGES) - {"atpg"}
        assert d(["sta", "atpg"]) == set(ALL_STAGES)

    def test_unknown_stage_lists_registered(self):
        with pytest.raises(ValueError,
                           match="registered stages: sta, faults, atpg"):
            DEFAULT_PIPELINE.descendants(["typo"])


class TestCachedRuns:
    @pytest.fixture()
    def cache(self, tmp_path):
        return StageCache(tmp_path)

    def test_rerun_is_all_hits_and_identical(self, s27, cache):
        first = HdfTestFlow(s27).run(cache=cache)
        again = HdfTestFlow(s27).run(cache=cache)
        assert all(s["cache"] == "miss"
                   for s in first.meta["stages"].values())
        assert all(s["cache"] == "hit"
                   for s in again.meta["stages"].values())
        assert again.meta["cache"] == {"hits": 6, "misses": 0}
        assert again.data.ranges == first.data.ranges
        assert again.table2_row() == first.table2_row()

    def test_scheduling_knob_reuses_upstream_artifacts(self, s27, cache):
        HdfTestFlow(s27).run(cache=cache)
        res = HdfTestFlow(
            s27, FlowConfig(ilp_time_limit=1.0)).run(cache=cache)
        stages = res.meta["stages"]
        for name in ("sta", "faults", "atpg", "simulation", "classify"):
            assert stages[name]["cache"] == "hit", name
        assert stages["schedule"]["cache"] == "miss"

    def test_corrupted_entry_recomputes_and_repairs(self, s27, cache):
        first = HdfTestFlow(s27).run(cache=cache)
        key = first.meta["keys"]["simulation"]
        cache._path(key).write_bytes(b"\x80truncated-pickle")
        res = HdfTestFlow(s27).run(cache=cache)
        stages = res.meta["stages"]
        assert stages["simulation"]["cache"] == "miss"
        for name in ("sta", "faults", "atpg", "classify", "schedule"):
            assert stages[name]["cache"] == "hit", name
        assert res.data.ranges == first.data.ranges
        # The repaired entry serves the next run.
        assert HdfTestFlow(s27).run(
            cache=cache).meta["stages"]["simulation"]["cache"] == "hit"

    def test_truncated_entry_is_a_miss(self, s27, cache):
        first = HdfTestFlow(s27).run(cache=cache)
        key = first.meta["keys"]["classify"]
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:10])
        res = HdfTestFlow(s27).run(cache=cache)
        assert res.meta["stages"]["classify"]["cache"] == "miss"

    def test_foreign_typed_entry_is_a_miss(self, s27, cache):
        first = HdfTestFlow(s27).run(cache=cache)
        cache.store(first.meta["keys"]["faults"], {"not": "an artifact"})
        res = HdfTestFlow(s27).run(cache=cache)
        assert res.meta["stages"]["faults"]["cache"] == "miss"
        assert res.table1_row() == first.table1_row()

    def test_cached_result_requires_every_stage(self, s27, cache):
        flow = HdfTestFlow(s27)
        assert flow.cached_result(cache=cache) is None
        first = flow.run(cache=cache)
        probe = flow.cached_result(cache=cache)
        assert probe is not None
        assert probe.table1_row() == first.table1_row()
        # Evict one stage: the whole-flow probe must turn into a miss.
        cache._path(first.meta["keys"]["schedule"]).unlink()
        assert flow.cached_result(cache=cache) is None

    def test_recompute_from_refreshes_stored_entry(self, s27, cache,
                                                   monkeypatch):
        flow = HdfTestFlow(s27)
        first = flow.run(cache=cache)
        key = first.meta["keys"]["schedule"]
        cache.store(key, "stale-placeholder")
        flow.run(cache=cache, recompute_from=("schedule",))
        refreshed = cache.load(key)
        assert refreshed != "stale-placeholder"
        assert type(refreshed).__name__ == "ScheduleArtifact"

    def test_run_without_cache_reports_computed(self, s27):
        res = HdfTestFlow(s27).run()
        assert all(s["cache"] == "computed"
                   for s in res.meta["stages"].values())
        assert "keys" not in res.meta
