"""Golden parity: the staged pipeline must be bit-identical to the monolith.

``HdfTestFlow.run_monolith`` retains the pre-pipeline flow body verbatim;
these tests pin ``HdfTestFlow.run`` (the staged execution) against it on
the embedded s27 and a seeded synthetic circuit, for both the default
(matrix ATPG / incremental simulation) and the reference engines.
"""

from __future__ import annotations

import pytest

from repro.circuits.generators import CircuitProfile, generate_circuit
from repro.core import FlowConfig, HdfTestFlow

DEFAULT_ENGINES = ()
REFERENCE_ENGINES = (("atpg", "reference"), ("simulation", "reference"))


def _synthetic():
    return generate_circuit(CircuitProfile(
        name="golden_syn", n_gates=60, n_ffs=10, n_inputs=8, n_outputs=6,
        depth=7, seed=13))


def _assert_bit_identical(staged, golden):
    # Patterns
    assert [(p.launch, p.capture) for p in staged.test_set] == \
           [(p.launch, p.capture) for p in golden.test_set]
    # Monitors / timing
    assert staged.clock.t_nom == golden.clock.t_nom
    assert staged.placement.monitored_gates == golden.placement.monitored_gates
    assert tuple(staged.configs) == tuple(golden.configs)
    # Detection ranges, exactly (FaultPatternRange/IntervalSet equality)
    assert staged.universe_size == golden.universe_size
    assert [(f.site, f.slow_to_rise, f.delta) for f in staged.data.faults] \
        == [(f.site, f.slow_to_rise, f.delta) for f in golden.data.faults]
    assert staged.data.ranges == golden.data.ranges
    # Classification sets
    for attr in ("at_speed", "conv_detected", "prop_detected", "target"):
        assert getattr(staged.classification, attr) == \
               getattr(golden.classification, attr), attr
    # Schedules
    assert set(staged.schedules) == set(golden.schedules)
    for name in staged.schedules:
        s, g = staged.schedules[name], golden.schedules[name]
        assert s.periods == g.periods, name
        assert s.entries == g.entries, name
        assert s.covered == g.covered, name
    # Paper tables
    assert staged.table1_row() == golden.table1_row()
    if staged.schedules:
        assert staged.table2_row() == golden.table2_row()


@pytest.mark.parametrize("engines", [DEFAULT_ENGINES, REFERENCE_ENGINES],
                         ids=["default-engines", "reference-engines"])
class TestParity:
    def test_s27(self, s27, engines):
        cfg = FlowConfig(engines=engines)
        staged = HdfTestFlow(s27, cfg).run()
        golden = HdfTestFlow(s27, cfg).run_monolith()
        _assert_bit_identical(staged, golden)

    def test_seeded_synthetic(self, engines):
        circuit = _synthetic()
        cfg = FlowConfig(engines=engines, pattern_cap=12)
        staged = HdfTestFlow(circuit, cfg).run()
        golden = HdfTestFlow(circuit, cfg).run_monolith()
        _assert_bit_identical(staged, golden)


def test_parity_with_coverage_schedules(s27):
    cfg = FlowConfig(coverage_targets=(0.95,))
    staged = HdfTestFlow(s27, cfg).run(with_coverage_schedules=True)
    golden = HdfTestFlow(s27, cfg).run_monolith(with_coverage_schedules=True)
    assert set(staged.coverage_schedules) == set(golden.coverage_schedules)
    for cov in staged.coverage_schedules:
        assert staged.coverage_schedules[cov].entries == \
               golden.coverage_schedules[cov].entries
    assert staged.table3_row() == golden.table3_row()


def test_parity_with_external_test_set(s27):
    cfg = FlowConfig()
    base = HdfTestFlow(s27, cfg).run(with_schedules=False)
    staged = HdfTestFlow(s27, cfg).run(test_set=base.test_set,
                                       with_schedules=False)
    golden = HdfTestFlow(s27, cfg).run_monolith(test_set=base.test_set,
                                                with_schedules=False)
    assert staged.atpg is None and golden.atpg is None
    _assert_bit_identical(staged, golden)


def test_progress_notes_match_monolith(s27):
    staged_notes, golden_notes = [], []
    HdfTestFlow(s27).run(progress=staged_notes.append)
    HdfTestFlow(s27).run_monolith(progress=golden_notes.append)
    assert staged_notes == golden_notes
