"""Tests for the PODEM stuck-at test generator."""

from __future__ import annotations

import pytest

from repro.atpg.podem import Podem
from repro.faults.models import FaultSite, StuckAtFault
from repro.faults.universe import fault_sites
from repro.netlist.bench import parse_bench
from repro.simulation.parallel_sim import BitParallelSimulator


def verify_test(circuit, fault, assignment) -> bool:
    """Check a PODEM assignment really detects the fault (random X fill)."""
    import random
    rng = random.Random(0)
    srcs = circuit.sources()
    vec = tuple(assignment.get(s, rng.randint(0, 1)) for s in srcs)
    sim = BitParallelSimulator(circuit)
    words, width = sim.pack_vectors([vec])
    good = sim.simulate(words, width)
    return sim.stuck_at_detect_mask(good, fault, width) == 1


class TestGeneration:
    def test_all_c17_faults_testable(self, c17):
        podem = Podem(c17, seed=1)
        for site in fault_sites(c17):
            for value in (0, 1):
                fault = StuckAtFault(site, value)
                assignment = podem.generate(fault)
                assert assignment is not None, fault.describe(c17)
                assert verify_test(c17, fault, assignment), fault.describe(c17)

    def test_s27_output_faults(self, s27):
        podem = Podem(s27, seed=1)
        detected = 0
        total = 0
        for site in fault_sites(s27):
            if not site.is_output_pin:
                continue
            for value in (0, 1):
                total += 1
                assignment = podem.generate(StuckAtFault(site, value))
                if assignment is None:
                    continue
                detected += 1
                assert verify_test(s27, StuckAtFault(site, value), assignment)
        assert detected / total > 0.8  # s27 has a couple of redundancies

    def test_untestable_fault_returns_none(self):
        # y = OR(a, NOT(a)) is constant 1: SA1 at y is untestable.
        c = parse_bench("""
        INPUT(a)
        OUTPUT(y)
        n = NOT(a)
        y = OR(a, n)
        """, name="redundant")
        podem = Podem(c, seed=0)
        fault = StuckAtFault(FaultSite(c.index_of("y")), 1)
        assert podem.generate(fault) is None
        assert not podem.stats.aborted  # proven, not aborted

    def test_assignment_is_partial(self, s27):
        """PODEM leaves unneeded sources unassigned (X)."""
        podem = Podem(s27, seed=1)
        widths = []
        for site in fault_sites(s27)[:6]:
            assignment = podem.generate(StuckAtFault(site, 0))
            if assignment is not None:
                widths.append(len(assignment))
        assert widths and min(widths) < len(s27.sources())

    def test_backtrack_limit_aborts(self, small_generated):
        podem = Podem(small_generated, max_backtracks=0, seed=0)
        hard = None
        for site in fault_sites(small_generated):
            fault = StuckAtFault(site, 0)
            result = podem.generate(fault)
            if result is None and podem.stats.aborted:
                hard = fault
                break
        # With zero backtracks allowed, at least one fault needs them.
        assert hard is not None

    def test_stats_populated(self, c17):
        podem = Podem(c17, seed=0)
        podem.generate(StuckAtFault(FaultSite(c17.index_of("N22")), 0))
        assert podem.stats.decisions > 0


class TestJustify:
    def test_justify_simple(self, c17):
        podem = Podem(c17, seed=0)
        for net in ("N10", "N16", "N22"):
            for value in (0, 1):
                assignment = podem.justify(c17.index_of(net), value)
                assert assignment is not None
                # Verify by simulation.
                import random
                rng = random.Random(1)
                srcs = c17.sources()
                vec = tuple(assignment.get(s, rng.randint(0, 1)) for s in srcs)
                sim = BitParallelSimulator(c17)
                words, width = sim.pack_vectors([vec])
                good = sim.simulate(words, width)
                assert good[c17.index_of(net)] == value

    def test_justify_source_direct(self, c17):
        podem = Podem(c17, seed=0)
        src = c17.sources()[0]
        assert podem.justify(src, 1) == {src: 1}

    def test_justify_constant_impossible(self):
        c = parse_bench("""
        INPUT(a)
        OUTPUT(y)
        n = NOT(a)
        y = OR(a, n)
        """, name="const1")
        podem = Podem(c, seed=0)
        assert podem.justify(c.index_of("y"), 0) is None

    def test_state_isolated_between_calls(self, c17):
        """Back-to-back generations must not leak assignments."""
        podem = Podem(c17, seed=0)
        f1 = StuckAtFault(FaultSite(c17.index_of("N22")), 0)
        first = podem.generate(f1)
        second = podem.generate(f1)
        assert first == second
