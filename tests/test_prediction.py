"""Tests for monitor-based failure prediction."""

from __future__ import annotations

import pytest

from repro.aging.lifetime import LifetimePoint, LifetimeResult
from repro.aging.prediction import FailurePredictor, MarginCrossing, PredictionReport
from repro.timing.clock import ClockSpec


def make_result(points, config_delays=(10.0, 30.0, 60.0)):
    return LifetimeResult(clock=ClockSpec(300.0),
                          config_delays=config_delays,
                          points=points)


def pt(t, slack, alerts):
    return LifetimePoint(t=t, critical_path=300.0 - slack, slack=slack,
                         alerts=alerts)


class TestCrossings:
    def test_extracted_in_time_order(self):
        result = make_result([
            pt(1.0, 100.0, {0: False, 1: False, 2: True}),
            pt(2.0, 50.0, {0: False, 1: True, 2: True}),
            pt(3.0, 20.0, {0: True, 1: True, 2: True}),
        ])
        crossings = FailurePredictor().crossings_of(result)
        assert [c.config for c in crossings] == [2, 1, 0]
        assert [c.time for c in crossings] == [1.0, 2.0, 3.0]
        assert [c.guard_band for c in crossings] == [60.0, 30.0, 10.0]

    def test_no_alerts_no_crossings(self):
        result = make_result([pt(1.0, 200.0, {0: False, 1: False, 2: False})])
        assert FailurePredictor().crossings_of(result) == []


class TestPrediction:
    def test_linear_margin_extrapolation(self):
        # Margin crosses 60 at t=1, 30 at t=2, 10 at t≈2.67 → slope ≈ -30/u.
        result = make_result([
            pt(1.0, 60.0, {0: False, 1: False, 2: True}),
            pt(2.0, 30.0, {0: False, 1: True, 2: True}),
            pt(3.0, 0.0, {0: True, 1: True, 2: True}),
        ])
        report = FailurePredictor().predict(result)
        assert report.predicted_failure_time is not None
        # Margin(t) fit through (1,60),(2,30),(3,10): root near 3.3.
        assert 2.5 < report.predicted_failure_time < 4.5

    def test_first_warning_time(self):
        result = make_result([
            pt(1.0, 100.0, {0: False, 1: False, 2: False}),
            pt(2.0, 50.0, {0: False, 1: False, 2: True}),
        ])
        report = FailurePredictor().predict(result)
        assert report.first_warning_time == 2.0

    def test_lead_time(self):
        result = make_result([
            pt(1.0, 55.0, {0: False, 1: False, 2: True}),
            pt(2.0, 25.0, {0: False, 1: True, 2: True}),
            pt(5.0, -1.0, {0: True, 1: True, 2: True}),
        ])
        report = FailurePredictor().predict(result)
        assert report.actual_failure_time == 5.0
        assert report.lead_time == pytest.approx(4.0)

    def test_slack_fallback_when_single_crossing(self):
        result = make_result([
            pt(1.0, 80.0, {0: False, 1: False, 2: False}),
            pt(2.0, 60.0, {0: False, 1: False, 2: False}),
            pt(3.0, 40.0, {0: False, 1: False, 2: True}),
        ])
        report = FailurePredictor(min_points=2).predict(result)
        # One crossing only → falls back to the slack series: -20/unit,
        # root at t = 5.
        assert report.predicted_failure_time == pytest.approx(5.0, abs=0.2)

    def test_no_fallback_when_disabled(self):
        result = make_result([
            pt(1.0, 80.0, {0: False, 1: False, 2: False}),
            pt(2.0, 60.0, {0: False, 1: False, 2: True}),
        ])
        report = FailurePredictor(use_slack_fallback=False).predict(result)
        assert report.predicted_failure_time is None

    def test_growing_margin_no_prediction(self):
        result = make_result([
            pt(1.0, 50.0, {0: False, 1: True, 2: True}),
            pt(2.0, 80.0, {0: False, 1: False, 2: True}),
        ])
        # Crossings: config2@1.0 (60), config1@1.0 (30)... margins don't
        # shrink over time; predictor must not invent a failure time from
        # the slack series either (slack grows).
        report = FailurePredictor().predict(result)
        if report.predicted_failure_time is not None:
            assert report.predicted_failure_time > 2.0


class TestReport:
    def test_summary_keys(self):
        report = PredictionReport(
            crossings=[MarginCrossing(0, 10.0, 1.0)],
            predicted_failure_time=4.0,
            actual_failure_time=5.0,
            first_warning_time=1.0)
        s = report.summary()
        assert s["predicted_failure"] == 4.0
        assert s["lead_time"] == 4.0
        assert report.prediction_error == pytest.approx(-1.0)

    def test_unknown_times_give_none(self):
        report = PredictionReport(crossings=[], predicted_failure_time=None,
                                  actual_failure_time=None,
                                  first_warning_time=None)
        assert report.lead_time is None
        assert report.prediction_error is None


class TestEndToEnd:
    def test_predicts_before_failure_on_simulated_device(self):
        """Integration: monitors warn before the device actually fails."""
        from repro.aging.degradation import AgingScenario
        from repro.aging.lifetime import LifetimeSimulator
        from repro.circuits.library import embedded_circuit
        from repro.monitors.insertion import insert_monitors
        from repro.monitors.monitor import MonitorConfigSet
        from repro.timing.sta import run_sta

        circuit = embedded_circuit("s27")
        sta = run_sta(circuit)
        clock = ClockSpec(sta.clock_period)
        configs = MonitorConfigSet.paper_default(clock.t_nom)
        placement = insert_monitors(circuit, sta, configs, fraction=1.0)
        sim = LifetimeSimulator(circuit, clock, placement,
                                scenario=AgingScenario(seed=2),
                                workload_patterns=8, seed=1)
        result = sim.run([0.25, 0.5, 1, 2, 4, 8, 16, 32, 64])
        report = FailurePredictor().predict(result)
        if result.failure_time is not None:
            assert report.first_warning_time is not None
            assert report.first_warning_time <= result.failure_time
