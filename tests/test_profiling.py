"""Tests for the lightweight stage timer."""

from __future__ import annotations

import pytest

from repro.utils.profiling import StageTimer


class TestStageTimer:
    def test_add_accumulates(self):
        t = StageTimer()
        t.add("sim", 0.5)
        t.add("sim", 0.25, count=3)
        t.add("io", 1.0)
        assert t.total("sim") == pytest.approx(0.75)
        assert t.total() == pytest.approx(1.75)
        assert t.as_dict()["sim"]["count"] == 4

    def test_unknown_stage_total_is_zero(self):
        assert StageTimer().total("nope") == 0.0

    def test_stage_context_measures(self):
        t = StageTimer()
        with t.stage("work"):
            sum(range(1000))
        d = t.as_dict()
        assert d["work"]["count"] == 1
        assert d["work"]["seconds"] >= 0.0

    def test_merge(self):
        a, b = StageTimer(), StageTimer()
        a.add("x", 1.0)
        b.add("x", 2.0, count=2)
        b.add("y", 3.0)
        a.merge(b)
        assert a.total("x") == pytest.approx(3.0)
        assert a.total("y") == pytest.approx(3.0)
        assert a.as_dict()["x"]["count"] == 3

    def test_as_dict_is_json_friendly(self):
        import json

        t = StageTimer()
        t.add("s", 0.125)
        assert json.loads(json.dumps(t.as_dict())) == t.as_dict()


def test_detection_timer_stage_counts(s27):
    """The detection stage split lands in the documented stage names."""
    from repro.atpg.transition import generate_transition_tests
    from repro.faults.detection import compute_detection_data
    from repro.faults.universe import small_delay_fault_universe
    from repro.timing.sta import run_sta

    faults = small_delay_fault_universe(s27)
    ts = generate_transition_tests(s27, seed=3).test_set.filled(seed=3)
    timer = StageTimer()
    compute_detection_data(
        s27, faults, ts, horizon=run_sta(s27).clock_period, timer=timer)
    d = timer.as_dict()
    assert set(d) <= {"pregrade", "base_sim", "faulty_sim", "intervals"}
    assert d["pregrade"]["count"] == 1
    assert d["base_sim"]["count"] == len(ts)
    assert d["faulty_sim"]["count"] == d["intervals"]["count"] > 0
