"""Tests for the lightweight stage timer."""

from __future__ import annotations

import pytest

from repro.utils.profiling import StageTimer


class TestStageTimer:
    def test_add_accumulates(self):
        t = StageTimer()
        t.add("sim", 0.5)
        t.add("sim", 0.25, count=3)
        t.add("io", 1.0)
        assert t.total("sim") == pytest.approx(0.75)
        assert t.total() == pytest.approx(1.75)
        assert t.as_dict()["sim"]["count"] == 4

    def test_unknown_stage_total_is_zero(self):
        assert StageTimer().total("nope") == 0.0

    def test_stage_context_measures(self):
        t = StageTimer()
        with t.stage("work"):
            sum(range(1000))
        d = t.as_dict()
        assert d["work"]["count"] == 1
        assert d["work"]["seconds"] >= 0.0

    def test_merge(self):
        a, b = StageTimer(), StageTimer()
        a.add("x", 1.0)
        b.add("x", 2.0, count=2)
        b.add("y", 3.0)
        a.merge(b)
        assert a.total("x") == pytest.approx(3.0)
        assert a.total("y") == pytest.approx(3.0)
        assert a.as_dict()["x"]["count"] == 3

    def test_as_dict_is_json_friendly(self):
        import json

        t = StageTimer()
        t.add("s", 0.125)
        assert json.loads(json.dumps(t.as_dict())) == t.as_dict()


class TestNestedStages:
    """Regression: nested/re-entrant stage() used to double-count total()."""

    def _spin(self, seconds):
        import time

        end = time.perf_counter() + seconds
        while time.perf_counter() < end:
            pass

    def test_nested_stage_does_not_double_count_total(self):
        import time

        t = StageTimer()
        t0 = time.perf_counter()
        with t.stage("outer"):
            self._spin(0.01)
            with t.stage("inner"):
                self._spin(0.02)
            self._spin(0.01)
        wall = time.perf_counter() - t0
        # Before the fix total() was ~wall + inner (inner counted twice).
        assert t.total() == pytest.approx(wall, rel=0.25)
        assert t.total() < 1.5 * wall

    def test_nested_stage_uses_hierarchical_keys(self):
        t = StageTimer()
        with t.stage("outer"):
            with t.stage("inner"):
                pass
        assert set(t.totals) == {"outer", "outer/inner"}
        assert t.counts["outer/inner"] == 1

    def test_reentrant_same_name(self):
        t = StageTimer()
        with t.stage("x"):
            self._spin(0.005)
            with t.stage("x"):
                self._spin(0.005)
        assert set(t.totals) == {"x", "x/x"}
        assert t.total() == pytest.approx(
            t.totals["x"] + t.totals["x/x"])

    def test_self_time_excludes_children(self):
        t = StageTimer()
        with t.stage("outer"):
            with t.stage("inner"):
                self._spin(0.02)
        # Outer self time is near zero, not ~0.02s.
        assert t.totals["outer"] < t.totals["outer/inner"]

    def test_exception_unwinds_stack(self):
        t = StageTimer()
        with pytest.raises(RuntimeError):
            with t.stage("outer"):
                with t.stage("inner"):
                    raise RuntimeError("boom")
        assert t._stack == []
        assert set(t.totals) == {"outer", "outer/inner"}
        # The timer remains usable with flat keys afterwards.
        with t.stage("later"):
            pass
        assert "later" in t.totals

    def test_pickle_roundtrip_drops_active_frames(self):
        import pickle

        t = StageTimer()
        t.add("x", 1.0)
        clone = pickle.loads(pickle.dumps(t))
        assert clone.totals == t.totals
        assert clone._stack == []


def test_detection_timer_stage_counts(s27):
    """The detection stage split lands in the documented stage names."""
    from repro.atpg.transition import generate_transition_tests
    from repro.faults.detection import compute_detection_data
    from repro.faults.universe import small_delay_fault_universe
    from repro.timing.sta import run_sta

    faults = small_delay_fault_universe(s27)
    ts = generate_transition_tests(s27, seed=3).test_set.filled(seed=3)
    horizon = run_sta(s27).clock_period

    # Default (wordwave): one batched sweep per stage, so counts are 1.
    timer = StageTimer()
    compute_detection_data(s27, faults, ts, horizon=horizon, timer=timer)
    d = timer.as_dict()
    assert set(d) <= {"pregrade", "base_sim", "site_inject",
                      "faulty_sim", "intervals"}
    assert d["base_sim"]["count"] == 1
    assert d["faulty_sim"]["count"] == d["intervals"]["count"] == 1

    # Incremental: per-pattern base sweeps, per-instance faulty resims.
    timer = StageTimer()
    compute_detection_data(s27, faults, ts, horizon=horizon, timer=timer,
                           engine="incremental")
    d = timer.as_dict()
    assert set(d) <= {"pregrade", "base_sim", "faulty_sim", "intervals"}
    assert d["pregrade"]["count"] == 1
    assert d["base_sim"]["count"] == len(ts)
    assert d["faulty_sim"]["count"] == d["intervals"]["count"] > 0
