"""Tests for experiment reporting helpers."""

from __future__ import annotations

from repro.experiments.paper_data import PAPER_TABLE1, PAPER_TABLE2, PAPER_TABLE3
from repro.experiments.reporting import compare_table1, compare_table2, format_table


class TestFormat:
    def test_basic_alignment(self):
        rows = [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yyy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.split() == ["c", "a"]

    def test_float_formatting(self):
        text = format_table([{"v": 3.14159}])
        assert "3.1" in text and "3.14159" not in text

    def test_missing_cell_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert text  # no crash; blank cells padded

    def test_title(self):
        assert format_table([{"a": 1}], title="T").startswith("T\n")


class TestPaperData:
    def test_table1_complete(self):
        assert len(PAPER_TABLE1) == 12
        for name, row in PAPER_TABLE1.items():
            assert len(row) == 8
            gates, ffs, p, m, conv, prop, gain, tar = row
            assert prop >= conv
            assert abs((prop / conv - 1) * 100 - gain) < 1.0, name

    def test_table2_consistency(self):
        for name, row in PAPER_TABLE2.items():
            f_conv, f_heur, f_prop, dpc_f, orig, opti, dpc = row
            assert f_prop <= f_heur, name  # ILP beats heuristic everywhere
            assert opti < orig
            # Δ%|PC| column matches its definition within rounding.
            assert abs((1 - opti / orig) * 100 - dpc) < 0.15, name

    def test_table2_freq_reduction_formula(self):
        for name, row in PAPER_TABLE2.items():
            f_conv, _f_heur, f_prop, dpc_f, *_ = row
            assert abs((1 - f_prop / f_conv) * 100 - dpc_f) < 0.1, name

    def test_table3_monotone(self):
        for name, by_cov in PAPER_TABLE3.items():
            f = [by_cov[c][0] for c in (90, 95, 98, 99)]
            assert f == sorted(f), name
            s = [by_cov[c][2] for c in (90, 95, 98, 99)]
            assert s == sorted(s), name


class TestComparisons:
    def test_compare_table1_unknown_circuit_skipped(self):
        rows = [{"circuit": "nonexistent", "gain_percent": 5.0}]
        assert compare_table1(rows) == []

    def test_compare_table1_sign_check(self):
        rows = [{"circuit": "s9234", "gain_percent": 10.0}]
        out = compare_table1(rows)
        assert out[0]["both_positive"] is True

    def test_compare_table2_fields(self):
        rows = [{"circuit": "s9234", "freq_prop": 3, "freq_heur": 4,
                 "pc_reduction_percent": 90.0}]
        out = compare_table2(rows)
        assert out[0]["ilp_beats_heuristic"] is True
        assert out[0]["paper_dpc_percent"] == 93.4
