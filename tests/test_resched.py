"""Adaptive rescheduling engine: equivalence, fast paths, IO, registry.

The load-bearing contract is *lossless warm-starting*: after any alert
delta the incremental engine's schedule must cost-match a cold re-solve
of the same shifted problem — asserted here with a randomized seeded
delta suite over the quick-profile circuits (>= 50 deltas) plus a
deterministic scenario replay on the small golden circuits, both racing
:func:`apply_alert` against :func:`apply_alert_cold` step by step and
against the warm-start-free :func:`cold_schedule_result` yardstick at
the end.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.runner import SuiteRunConfig, run_suite
from repro.scheduling.resched import (
    AlertDelta,
    apply_alert,
    apply_alert_cold,
    cold_schedule_result,
    load_alert_stream,
    prepare_state_for_result,
    scenario_alert_stream,
)
from repro.scheduling.schedule import _pattern_config_subsets_from_ranges

QUICK_CIRCUITS = ("s9234", "s13207")
#: Seeded random deltas per quick circuit (2 x 25 = 50 total).
DELTAS_PER_CIRCUIT = 25


@pytest.fixture(scope="module")
def quick_results():
    """Quick-profile flow results for the randomized equivalence suite."""
    return run_suite(SuiteRunConfig.quick(names=QUICK_CIRCUITS,
                                          with_schedules=False))


def _assert_cost_equal(out_inc, out_cold, ctx):
    assert out_inc.cost == out_cold.cost, ctx
    assert out_inc.schedule.covered == out_cold.schedule.covered, ctx


def _random_delta(rng, gates):
    n = int(rng.integers(1, 4))
    picked = rng.choice(gates, size=min(n, len(gates)), replace=False)
    shifts = {}
    for g in picked:
        s = float(rng.uniform(0.5, 5.0))
        if rng.random() < 0.2:
            s = -s          # occasional healing / recalibration shift
        shifts[int(g)] = s
    return AlertDelta.from_mapping(shifts)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("name,seed", [("s9234", 11), ("s13207", 12)])
    def test_seeded_deltas_cost_equal_to_cold(self, quick_results, name,
                                              seed):
        res = quick_results[name]
        st_inc = prepare_state_for_result(res)
        st_cold = prepare_state_for_result(res)
        rng = np.random.default_rng(seed)
        gates = np.array(sorted(st_inc.gate_faults))
        for k in range(DELTAS_PER_CIRCUIT):
            delta = _random_delta(rng, gates)
            out_inc = apply_alert(st_inc, delta)
            out_cold = apply_alert_cold(st_cold, delta)
            _assert_cost_equal(out_inc, out_cold, (name, k, delta))
        # Final cross-check against a solve sharing no machinery with
        # either state (fresh discretization + stock optimizer).
        reference = cold_schedule_result(st_inc)
        assert (st_inc.schedule.num_frequencies
                == reference.num_frequencies), name
        assert st_inc.schedule.covered == reference.covered, name

    def test_scenario_stream_cost_equal_on_golden(self, flow_result_small):
        from repro.aging.scenario import ScenarioSpec

        st_inc = prepare_state_for_result(flow_result_small)
        st_cold = prepare_state_for_result(flow_result_small)
        spec = ScenarioSpec(gate_seed=3, seed=3)
        alerts = scenario_alert_stream(
            flow_result_small.circuit, spec,
            gates=st_inc.gate_faults.keys())
        assert alerts, "scenario produced no alerts on gen60"
        for k, delta in enumerate(alerts):
            out_inc = apply_alert(st_inc, delta)
            out_cold = apply_alert_cold(st_cold, delta)
            _assert_cost_equal(out_inc, out_cold, ("gen60", k))
            assert out_inc.stats["step1_path"] in (
                "structure", "repair", "greedy-certified",
                "warm-presolve-ilp", "presolve-ilp", "greedy"), out_inc.stats


class TestFastPaths:
    def test_empty_delta_returns_previous_schedule_object(
            self, flow_result_s27):
        state = prepare_state_for_result(flow_result_s27)
        before = state.schedule
        out = apply_alert(state, AlertDelta(shifts=()))
        assert out.fast_path == "empty-delta"
        assert out.schedule is before       # no rebuild, same object
        assert out.stats["grid"] is None

    def test_alert_on_faultless_gate_is_a_noop(self, flow_result_s27):
        state = prepare_state_for_result(flow_result_s27)
        free = next(g for g in range(len(flow_result_s27.circuit.gates))
                    if g not in state.gate_faults)
        before = state.schedule
        out = apply_alert(state, AlertDelta.from_mapping({free: 3.0}))
        assert out.fast_path == "no-dirty-faults"
        assert out.schedule is before

    def test_repeated_alert_reuses_caches(self, flow_result_s27):
        state = prepare_state_for_result(flow_result_s27)
        gate = next(iter(state.gate_faults))
        # First round trip populates the caches at both operating points;
        # the second must replay every step-2 subproblem from the memo.
        apply_alert(state, AlertDelta.from_mapping({gate: 1.0}))
        apply_alert(state, AlertDelta.from_mapping({gate: -1.0}))
        hits_before = state.step2_cache.hits
        out_up = apply_alert(state, AlertDelta.from_mapping({gate: 1.0}))
        out_dn = apply_alert(state, AlertDelta.from_mapping({gate: -1.0}))
        assert state.step2_cache.hits > hits_before
        assert out_up.stats["step2_misses"] == 0
        assert out_dn.stats["step2_misses"] == 0

    def test_caches_are_bounded(self, flow_result_s27):
        from repro.scheduling.resched import (
            CAND_FAULTS_CACHE_SIZE,
            COMBO_CACHE_SIZE,
            STEP2_CACHE_SIZE,
        )

        state = prepare_state_for_result(flow_result_s27)
        assert state.step2_cache.maxsize == STEP2_CACHE_SIZE
        assert state.cand_faults_cache.maxsize == CAND_FAULTS_CACHE_SIZE
        assert state.cand_obj_cache.maxsize == CAND_FAULTS_CACHE_SIZE
        assert state.combo_cache.maxsize == COMBO_CACHE_SIZE


class TestComboMemo:
    def test_combo_hits_match_cold_subset_builder(self, flow_result_s27):
        state = prepare_state_for_result(flow_result_s27)
        gate = next(iter(state.gate_faults))
        apply_alert(state, AlertDelta.from_mapping({gate: 2.0}))
        from repro.scheduling.resched import _fault_combo_hits

        fault_set = frozenset(state.fault_ids)
        for period in state.schedule.periods:
            expected = _pattern_config_subsets_from_ranges(
                state.pattern_ranges, fault_set, period, state.configs)
            got: dict = {}
            for f in fault_set:
                for key in _fault_combo_hits(state, period, f):
                    got.setdefault(key, set()).add(f)
            assert got == expected, period


class TestAlertDelta:
    def test_from_mapping_drops_zero_shifts(self):
        d = AlertDelta.from_mapping({3: 0.0, 5: 1.5})
        assert d.shifts == ((5, 1.5),)
        assert d.gates == frozenset({5})
        assert not d.is_empty

    def test_from_mapping_canonical_order(self):
        a = AlertDelta.from_mapping({9: 1.0, 2: 0.5})
        b = AlertDelta.from_mapping({2: 0.5, 9: 1.0})
        assert a == b
        assert a.shifts == ((2, 0.5), (9, 1.0))

    def test_all_zero_is_empty(self):
        assert AlertDelta.from_mapping({1: 0.0}).is_empty


class TestAlertStreamIO:
    def test_load_all_three_event_forms(self, tmp_path):
        path = tmp_path / "alerts.json"
        path.write_text(json.dumps([
            {"gate": 12, "shift_ps": 4.0},
            [{"gate": 7, "shift_ps": 1.5}, {"gate": 7, "shift_ps": 0.5},
             {"gate": 3, "shift_ps": 2.0}],
            {"shifts": {"12": 4.0, "7": 1.5}},
        ]))
        stream = load_alert_stream(path)
        assert stream[0] == AlertDelta.from_mapping({12: 4.0})
        assert stream[1] == AlertDelta.from_mapping({7: 2.0, 3: 2.0})
        assert stream[2] == AlertDelta.from_mapping({12: 4.0, 7: 1.5})

    def test_non_list_rejected(self, tmp_path):
        path = tmp_path / "alerts.json"
        path.write_text(json.dumps({"gate": 1, "shift_ps": 1.0}))
        with pytest.raises(ValueError, match="JSON list"):
            load_alert_stream(path)

    def test_malformed_entry_rejected(self, tmp_path):
        path = tmp_path / "alerts.json"
        path.write_text(json.dumps([[1, 2, 3]]))
        with pytest.raises(ValueError, match="malformed"):
            load_alert_stream(path)


class TestScenarioStream:
    def test_deterministic(self, small_generated):
        from repro.aging.scenario import ScenarioSpec

        spec = ScenarioSpec(gate_seed=5, seed=5)
        a = scenario_alert_stream(small_generated, spec)
        b = scenario_alert_stream(small_generated, spec)
        assert a == b

    def test_max_gates_cap(self, small_generated):
        from repro.aging.scenario import ScenarioSpec

        spec = ScenarioSpec(gate_seed=5, seed=5)
        for delta in scenario_alert_stream(small_generated, spec,
                                           max_gates=2):
            assert 1 <= len(delta.shifts) <= 2

    def test_gate_pool_restriction(self, small_generated):
        from repro.aging.scenario import ScenarioSpec

        spec = ScenarioSpec(gate_seed=5, seed=5)
        pool = {0, 1, 2, 3, 4, 5, 6, 7}
        for delta in scenario_alert_stream(small_generated, spec,
                                           gates=pool):
            assert delta.gates <= pool

    def test_max_gates_validated(self, small_generated):
        from repro.aging.scenario import ScenarioSpec

        with pytest.raises(ValueError, match="max_gates"):
            scenario_alert_stream(small_generated, ScenarioSpec(),
                                  max_gates=0)

    def test_include_empty_keeps_every_checkpoint(self, small_generated):
        from repro.aging.scenario import ScenarioSpec

        spec = ScenarioSpec(gate_seed=5, seed=5)
        stream = scenario_alert_stream(small_generated, spec,
                                       include_empty=True)
        assert len(stream) == len(spec.checkpoints)


class TestEngineRegistry:
    def test_resched_stage_registered(self):
        from repro.core.engines import ENGINES

        assert "resched" in ENGINES.stages()
        assert ENGINES.default("resched") == "incremental"
        assert ENGINES.names("resched") == ("cold", "incremental")

    def test_unknown_engine_lists_alternatives(self):
        from repro.core.engines import ENGINES

        with pytest.raises(ValueError, match="cold, incremental"):
            ENGINES.resolve("resched", "nope")

    def test_adapters_dispatch(self, flow_result_s27):
        from repro.core.engines import ENGINES

        state = prepare_state_for_result(flow_result_s27)
        delta = AlertDelta.from_mapping(
            {next(iter(state.gate_faults)): 1.0})
        out = ENGINES.resolve("resched", "incremental").fn(state, delta)
        assert out.cost == ENGINES.resolve("resched", "cold").fn(
            state, AlertDelta(shifts=())).cost


class TestReplayHarness:
    def test_replay_result_records_and_agrees(self, flow_result_small):
        from repro.experiments.resched import (
            aggregate_totals,
            replay_record,
            replay_result,
        )

        replay = replay_result(flow_result_small)
        assert replay.cost_equal
        assert replay.alerts == len(replay.latencies_s) == len(replay.cold_s)
        record = replay_record(replay, flow_result_small)
        assert record["alerts"] == replay.alerts
        assert record["cost_equal"] is True
        totals = aggregate_totals([replay])
        assert totals["alerts"] == replay.alerts
        assert totals["cost_equal"] is True


class TestCli:
    def test_resched_on_alert_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "alerts.json"
        path.write_text(json.dumps([{"gate": 13, "shift_ps": 2.0},
                                    {"gate": 16, "shift_ps": 1.0}]))
        assert main(["resched", "s27", "--alerts", str(path),
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "alerts=2" in out
        assert "summary:" in out

    def test_resched_json_output(self, capsys):
        from repro.cli import main

        assert main(["resched", "s27", "--json", "--no-cache"]) == 0
        payload = json.loads(
            capsys.readouterr().out.split("\n", 1)[1])
        assert payload["summary"]["engine"] == "incremental"
        assert len(payload["events"]) == payload["summary"]["alerts"]

    def test_resched_unknown_engine_lists_registered(self, capsys):
        from repro.cli import main

        assert main(["resched", "s27", "--engine", "bogus",
                     "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "cold, incremental" in err

    def test_bench_unknown_stage_lists_all(self, capsys):
        from repro.cli import main

        assert main(["bench", "--stage", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "resched" in err and "schedule" in err and "suite" in err
