"""Edge-case tests for result containers and derived metrics."""

from __future__ import annotations

import pytest

from repro.atpg.patterns import PatternPair, TestSet
from repro.faults.classify import FaultClassification
from repro.faults.detection import DetectionData
from repro.monitors.monitor import MonitorConfigSet
from repro.netlist.circuit import Circuit, GateKind
from repro.timing.clock import ClockSpec


def _tiny_data():
    c = Circuit("d")
    a = c.add_input("a")
    g = c.add_gate("g", GateKind.NOT, [a])
    c.mark_output(g)
    c.finalize()
    patterns = TestSet(c, [PatternPair((0,), (1,))])
    return DetectionData(circuit=c, faults=[], patterns=patterns,
                         horizon=100.0, monitored_gates=frozenset())


class TestClassificationMetrics:
    def test_gain_zero_conv_zero_prop(self):
        cls = FaultClassification(data=_tiny_data(), clock=ClockSpec(100.0),
                                  configs=MonitorConfigSet((10.0,)))
        assert cls.coverage_gain_percent == 0.0

    def test_gain_infinite_when_only_monitors_detect(self):
        cls = FaultClassification(data=_tiny_data(), clock=ClockSpec(100.0),
                                  configs=MonitorConfigSet((10.0,)))
        cls.prop_detected = {0}
        assert cls.coverage_gain_percent == float("inf")

    def test_gain_regular(self):
        cls = FaultClassification(data=_tiny_data(), clock=ClockSpec(100.0),
                                  configs=MonitorConfigSet((10.0,)))
        cls.conv_detected = {0, 1}
        cls.prop_detected = {0, 1, 2}
        assert cls.coverage_gain_percent == pytest.approx(50.0)


class TestFlowResultMetrics:
    def test_gain_consistent_with_classification(self, flow_result_small):
        res = flow_result_small
        conv = res.conv_hdf_detected
        prop = res.prop_hdf_detected
        if conv:
            assert res.gain_percent == pytest.approx(
                (prop / conv - 1.0) * 100.0)

    def test_hdf_counts_exclude_at_speed(self, flow_result_small):
        res = flow_result_small
        cls = res.classification
        assert res.conv_hdf_detected == len(cls.conv_detected - cls.at_speed)
        assert res.prop_hdf_detected == len(cls.prop_detected - cls.at_speed)

    def test_targets_never_exceed_prop_hdfs(self, flow_result_small):
        res = flow_result_small
        assert res.num_target_faults <= res.prop_hdf_detected

    def test_table3_row_empty_without_coverage_schedules(self,
                                                         flow_result_s27):
        row = flow_result_s27.table3_row()
        assert list(row) == ["circuit"]
