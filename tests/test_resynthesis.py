"""Tests for the resynthesis sensitivity experiment."""

from __future__ import annotations

import pytest

from repro.experiments.resynthesis import resynthesis_comparison


@pytest.fixture(scope="module")
def rows():
    return resynthesis_comparison("s9234", scale=0.4, pattern_cap=10)


class TestResynthesis:
    def test_three_variants(self, rows):
        variants = [r["variant"] for r in rows]
        assert variants[0] == "s9234"
        assert variants[1].endswith("_dec")
        assert variants[2].endswith("_buf")

    def test_decomposition_deepens_and_slows(self, rows):
        original, decomposed, _ = rows
        assert decomposed["depth"] >= original["depth"]
        assert decomposed["gates"] >= original["gates"]

    def test_all_variants_produce_detections(self, rows):
        for r in rows:
            assert r["prop"] > 0
            assert r["prop"] >= r["conv"]

    def test_buffering_keeps_ff_count(self, rows):
        original, _, buffered = rows
        assert buffered["ffs"] == original["ffs"]

    def test_rows_carry_clock(self, rows):
        for r in rows:
            assert r["clk_ps"] > 0
