"""Tests for the process-variation robustness study."""

from __future__ import annotations

import pytest

from repro.experiments.robustness import (
    RobustnessPoint,
    mean_coverage,
    replay_schedule,
    robustness_study,
)


class TestReplay:
    def test_nominal_replay_reaches_full_coverage(self, flow_result_small):
        """On the unperturbed circuit, the schedule detects everything it
        claims (independent re-simulation, no stored ranges)."""
        prop = flow_result_small.schedules["prop"]
        detected = replay_schedule(flow_result_small, prop,
                                   flow_result_small.circuit)
        assert detected == len(prop.targets)


class TestStudy:
    @pytest.fixture(scope="class")
    def points(self, flow_result_small):
        return robustness_study(flow_result_small,
                                corner_seeds=[1, 2, 3],
                                sigma_fraction=0.05,
                                max_targets=30)

    def test_point_grid_complete(self, points):
        seeds = {p.corner_seed for p in points}
        policies = {p.policy for p in points}
        assert seeds == {1, 2, 3}
        assert policies == {"mid", "lo"}
        assert len(points) == 6

    def test_coverages_in_unit_interval(self, points):
        for p in points:
            assert 0.0 <= p.coverage <= 1.0

    def test_midpoints_comparably_robust(self, points):
        """The paper's rationale is that midpoints are the robust choice;
        at this circuit scale the midpoint-vs-edge delta is within corner
        noise, so the check asserts comparability, not dominance."""
        assert mean_coverage(points, "mid") >= mean_coverage(points, "lo") - 0.10

    def test_midpoints_retain_most_coverage(self, points):
        assert mean_coverage(points, "mid") > 0.7

    def test_mean_coverage_empty_policy(self, points):
        assert mean_coverage(points, "hi") == 0.0

    def test_point_dataclass(self):
        p = RobustnessPoint(corner_seed=1, policy="mid", detected=3, targets=4)
        assert p.coverage == pytest.approx(0.75)
        assert RobustnessPoint(1, "mid", 0, 0).coverage == 1.0
