"""Tests for the suite runner and its caches."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.runner import SuiteRunConfig, clear_cache, run_suite


def _signature(res):
    """Comparable digest of one FlowResult (engine/jobs must not change it)."""
    return (
        [(p.launch, p.capture) for p in res.test_set],
        res.universe_size,
        res.data.faults_with_ranges(),
        sorted(res.schedules),
    )


class TestConfig:
    def test_defaults_cover_full_suite(self):
        cfg = SuiteRunConfig()
        assert len(cfg.names) == 12
        assert cfg.scale == 1.0

    def test_quick_profile(self):
        cfg = SuiteRunConfig.quick()
        assert len(cfg.names) == 4
        assert cfg.scale < 1.0

    def test_quick_overrides(self):
        cfg = SuiteRunConfig.quick(with_coverage_schedules=True, scale=0.4)
        assert cfg.with_coverage_schedules
        assert cfg.scale == 0.4

    def test_hashable_for_cache_key(self):
        assert hash(SuiteRunConfig.quick()) == hash(SuiteRunConfig.quick())

    def test_jobs_default_follows_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert SuiteRunConfig.quick().jobs == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert SuiteRunConfig.quick().jobs == 3
        monkeypatch.setenv("REPRO_JOBS", "junk")
        assert SuiteRunConfig.quick().jobs == 1

    def test_job_count_is_part_of_the_cache_key(self, monkeypatch):
        # Regression: configs built under different REPRO_JOBS settings
        # used to alias the same in-memory cache entry.
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = SuiteRunConfig.quick()
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel = SuiteRunConfig.quick()
        assert serial != parallel
        assert parallel.jobs == 4


class TestRun:
    @pytest.fixture()
    def tiny_cfg(self):
        return SuiteRunConfig(names=("s9234",), scale=0.25,
                              with_schedules=False)

    def test_run_and_cache(self, tiny_cfg):
        clear_cache()
        first = run_suite(tiny_cfg)
        second = run_suite(tiny_cfg)
        assert first["s9234"] is second["s9234"]

    def test_clear_cache_forces_recompute(self, tiny_cfg):
        first = run_suite(tiny_cfg)
        clear_cache()
        second = run_suite(tiny_cfg)
        assert first["s9234"] is not second["s9234"]

    def test_different_scale_different_entry(self, tiny_cfg):
        a = run_suite(tiny_cfg)
        b = run_suite(SuiteRunConfig(names=("s9234",), scale=0.3,
                                     with_schedules=False))
        assert a["s9234"] is not b["s9234"]

    def test_pattern_budget_scales_with_suite(self, tiny_cfg):
        res = run_suite(tiny_cfg)["s9234"]
        assert len(res.test_set) <= 24  # full-scale budget for s9234

    def test_results_keyed_in_config_order(self):
        cfg = SuiteRunConfig(names=("s13207", "s9234"), scale=0.25,
                             with_schedules=False)
        out = run_suite(cfg)
        assert list(out) == ["s13207", "s9234"]


class TestParallel:
    def test_parallel_matches_serial(self):
        clear_cache()
        serial_cfg = SuiteRunConfig(names=("s9234", "s13207"), scale=0.25,
                                    with_schedules=True, jobs=1)
        serial = run_suite(serial_cfg)
        parallel = run_suite(replace(serial_cfg, jobs=2))
        assert list(serial) == list(parallel)
        for name in serial:
            assert _signature(serial[name]) == _signature(parallel[name]), name

    def test_parallel_merges_worker_timers(self):
        from repro.utils.profiling import StageTimer
        clear_cache()
        timer = StageTimer()
        run_suite(SuiteRunConfig(names=("s9234", "s13207"), scale=0.25,
                                 with_schedules=False, jobs=2), timer=timer)
        # Every worker ships its stage split back to the caller.
        assert timer.total() > 0
        assert "random" in timer.totals  # the ATPG stage of both workers


class TestDiskCache:
    @pytest.fixture()
    def disk_cfg(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FLOW_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        yield SuiteRunConfig(names=("s9234",), scale=0.25,
                             with_schedules=False)
        clear_cache()

    def test_second_invocation_skips_all_flow_executions(self, disk_cfg,
                                                         monkeypatch,
                                                         tmp_path):
        first = run_suite(disk_cfg)
        assert any(tmp_path.rglob("*.pkl"))  # stage artifacts persisted

        clear_cache()  # wipe in-memory layer; only the disk copy remains

        def boom(self, ctx, inputs):
            raise AssertionError("stage must not execute on a cache hit")

        monkeypatch.setattr("repro.core.stages.Stage.run", boom)
        second = run_suite(disk_cfg)
        assert _signature(first["s9234"]) == _signature(second["s9234"])
        meta = second["s9234"].meta
        assert all(s["cache"] == "hit" for s in meta["stages"].values())
        assert meta["cache"] == {"hits": len(meta["stages"]), "misses": 0}

    def test_partial_run_resumes_from_last_finished_stage(self, disk_cfg):
        from repro.core.stages import ScheduleStage

        # Simulate a run killed during schedule optimization: everything
        # upstream landed in the stage store, the schedule artifact didn't.
        def die(self, ctx, inputs):
            raise RuntimeError("killed mid-flow")

        resumed_cfg = SuiteRunConfig(names=("s9234",), scale=0.25,
                                     with_schedules=True)
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(ScheduleStage, "run", die)
            with pytest.raises(RuntimeError, match="killed mid-flow"):
                run_suite(resumed_cfg)
        clear_cache()

        result = run_suite(resumed_cfg)["s9234"]
        stages = result.meta["stages"]
        assert stages["schedule"]["cache"] == "miss"   # recomputed
        for name in ("sta", "faults", "atpg", "simulation", "classify"):
            assert stages[name]["cache"] == "hit", name

    def test_recompute_from_forces_downstream_only(self, disk_cfg):
        run_suite(disk_cfg)
        clear_cache()
        result = run_suite(disk_cfg,
                           recompute_from=("simulation",))["s9234"]
        stages = result.meta["stages"]
        for name in ("sta", "faults", "atpg"):
            assert stages[name]["cache"] == "hit", name
        for name in ("simulation", "classify", "schedule"):
            assert stages[name]["cache"] == "computed", name

    def test_recompute_from_rejects_unknown_stage(self, disk_cfg):
        with pytest.raises(ValueError, match="registered stages"):
            run_suite(disk_cfg, recompute_from=("nope",))

    def test_disabled_cache_writes_nothing(self, disk_cfg, monkeypatch,
                                           tmp_path):
        monkeypatch.setenv("REPRO_FLOW_CACHE", "0")
        run_suite(disk_cfg)
        assert not any(tmp_path.rglob("*.pkl"))

    def test_job_count_shares_one_disk_entry(self, disk_cfg, monkeypatch,
                                             tmp_path):
        run_suite(disk_cfg)
        entries = list(tmp_path.rglob("*.pkl"))
        clear_cache()
        run_suite(replace(disk_cfg, jobs=2))  # same key: no new artifact
        assert sorted(tmp_path.rglob("*.pkl")) == sorted(entries)

    def test_run_suite_constructs_exactly_one_stage_cache(self, disk_cfg,
                                                          monkeypatch):
        # Regression: the pre-scan and the execution path used to build
        # separate StageCache instances; one instance is now threaded
        # through the cached-result probe, the pool workers and the
        # serial path alike.
        from repro.experiments.artifact_cache import StageCache

        constructed = []
        orig = StageCache.__init__

        def counting(self, root=None):
            constructed.append(self)
            orig(self, root)

        monkeypatch.setattr(StageCache, "__init__", counting)
        run_suite(disk_cfg)
        assert len(constructed) == 1
