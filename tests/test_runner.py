"""Tests for the suite runner and its cache."""

from __future__ import annotations

import pytest

from repro.experiments.runner import SuiteRunConfig, clear_cache, run_suite


class TestConfig:
    def test_defaults_cover_full_suite(self):
        cfg = SuiteRunConfig()
        assert len(cfg.names) == 12
        assert cfg.scale == 1.0

    def test_quick_profile(self):
        cfg = SuiteRunConfig.quick()
        assert len(cfg.names) == 4
        assert cfg.scale < 1.0

    def test_quick_overrides(self):
        cfg = SuiteRunConfig.quick(with_coverage_schedules=True, scale=0.4)
        assert cfg.with_coverage_schedules
        assert cfg.scale == 0.4

    def test_hashable_for_cache_key(self):
        assert hash(SuiteRunConfig.quick()) == hash(SuiteRunConfig.quick())


class TestRun:
    @pytest.fixture()
    def tiny_cfg(self):
        return SuiteRunConfig(names=("s9234",), scale=0.25,
                              with_schedules=False)

    def test_run_and_cache(self, tiny_cfg):
        clear_cache()
        first = run_suite(tiny_cfg)
        second = run_suite(tiny_cfg)
        assert first["s9234"] is second["s9234"]

    def test_clear_cache_forces_recompute(self, tiny_cfg):
        first = run_suite(tiny_cfg)
        clear_cache()
        second = run_suite(tiny_cfg)
        assert first["s9234"] is not second["s9234"]

    def test_different_scale_different_entry(self, tiny_cfg):
        a = run_suite(tiny_cfg)
        b = run_suite(SuiteRunConfig(names=("s9234",), scale=0.3,
                                     with_schedules=False))
        assert a["s9234"] is not b["s9234"]

    def test_pattern_budget_scales_with_suite(self, tiny_cfg):
        res = run_suite(tiny_cfg)["s9234"]
        assert len(res.test_set) <= 24  # full-scale budget for s9234

    def test_results_keyed_in_config_order(self):
        cfg = SuiteRunConfig(names=("s13207", "s9234"), scale=0.25,
                             with_schedules=False)
        out = run_suite(cfg)
        assert list(out) == ["s13207", "s9234"]
