"""Tests for the scan-chain model and cycle accounting."""

from __future__ import annotations

import pytest

from repro.netlist.scan import (
    ScanChainPlan,
    naive_test_cycles,
    plan_scan_chains,
    schedule_test_cycles,
)


class TestPlan:
    def test_single_chain(self, s27):
        plan = plan_scan_chains(s27)
        assert plan.n_chains == 1
        assert plan.longest_chain == s27.num_ffs
        assert plan.cycles_per_pattern == s27.num_ffs + 2

    def test_balanced_chains(self, small_generated):
        plan = plan_scan_chains(small_generated, n_chains=4)
        chains = plan.chains(small_generated)
        sizes = [len(c) for c in chains]
        assert sum(sizes) == small_generated.num_ffs
        assert max(sizes) - min(sizes) <= 1
        assert plan.longest_chain == max(sizes)

    def test_all_ffs_assigned_once(self, small_generated):
        plan = plan_scan_chains(small_generated, n_chains=3)
        chains = plan.chains(small_generated)
        flat = [ff for c in chains for ff in c]
        assert sorted(flat) == sorted(small_generated.dffs)

    def test_zero_chains_rejected(self):
        with pytest.raises(ValueError):
            ScanChainPlan(n_ffs=4, n_chains=0)

    def test_mismatched_circuit_rejected(self, s27, small_generated):
        plan = plan_scan_chains(s27)
        with pytest.raises(ValueError):
            plan.chains(small_generated)


class TestCycleAccounting:
    def test_schedule_cycles(self, flow_result_small, small_generated):
        prop = flow_result_small.schedules["prop"]
        plan = plan_scan_chains(small_generated, n_chains=2)
        cycles = schedule_test_cycles(prop, plan, relock_cycles=1000.0)
        expected = (prop.num_frequencies * 1000.0
                    + prop.num_entries * plan.cycles_per_pattern)
        assert cycles == pytest.approx(expected)

    def test_optimized_beats_naive(self, flow_result_small, small_generated):
        prop = flow_result_small.schedules["prop"]
        plan = plan_scan_chains(small_generated)
        n_p = len(flow_result_small.test_set)
        n_c = len(flow_result_small.configs)
        assert schedule_test_cycles(prop, plan) <= naive_test_cycles(
            prop, plan, n_p, n_c)

    def test_more_chains_fewer_cycles(self, flow_result_small,
                                      small_generated):
        prop = flow_result_small.schedules["prop"]
        one = plan_scan_chains(small_generated, n_chains=1)
        four = plan_scan_chains(small_generated, n_chains=4)
        assert schedule_test_cycles(prop, four) <= schedule_test_cycles(
            prop, one)
