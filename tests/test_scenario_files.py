"""Tests for declarative aging-scenario files (ScenarioSpec JSON)."""

from __future__ import annotations

import json

import pytest

from repro.aging.degradation import BtiModel
from repro.aging.hazard import WeibullHazard, WeibullMixture
from repro.aging.scenario import (
    DEFAULT_CHECKPOINTS,
    ScenarioSpec,
    VariationSpec,
)


class TestValidation:
    def test_defaults_valid(self):
        spec = ScenarioSpec()
        assert spec.checkpoints == DEFAULT_CHECKPOINTS
        assert list(DEFAULT_CHECKPOINTS) == sorted(DEFAULT_CHECKPOINTS)

    def test_checkpoints_must_ascend(self):
        with pytest.raises(ValueError, match="ascending"):
            ScenarioSpec(checkpoints=(2.0, 1.0))
        with pytest.raises(ValueError, match="positive"):
            ScenarioSpec(checkpoints=(0.0, 1.0))
        with pytest.raises(ValueError, match="at least one checkpoint"):
            ScenarioSpec(checkpoints=())

    def test_clock_margin_floor(self):
        with pytest.raises(ValueError, match="clock_margin"):
            ScenarioSpec(clock_margin=0.9)

    def test_tau_ordering(self):
        with pytest.raises(ValueError, match="tau_min"):
            ScenarioSpec(tau_min=3.0, tau_max=1.0)

    def test_variation_non_negative(self):
        with pytest.raises(ValueError, match="bti_sigma"):
            VariationSpec(bti_sigma=-0.1)


class TestSerialisation:
    def test_round_trip_file(self, tmp_path):
        spec = ScenarioSpec(
            bti=BtiModel(amplitude=0.03),
            stress_spread=0.3,
            variation=VariationSpec(hci_sigma=0.35),
            hazard=WeibullMixture.bathtub(infant_weight=0.15),
            checkpoints=(0.5, 1.0, 2.0, 4.0),
            clock_margin=1.25, seed=99)
        path = tmp_path / "spec.json"
        spec.save(path)
        loaded = ScenarioSpec.load(path)
        assert loaded == spec
        assert loaded.fingerprint() == spec.fingerprint()

    def test_dict_round_trip_preserves_hazard(self):
        spec = ScenarioSpec(hazard=WeibullMixture(
            components=(WeibullHazard(0.5, 2.0), WeibullHazard(3.0, 9.0)),
            weights=(0.25, 0.75)))
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again.hazard.components == spec.hazard.components
        assert again.hazard.weights == spec.hazard.weights

    def test_unknown_fields_rejected(self):
        data = ScenarioSpec().to_dict()
        data["frobnicate"] = 1
        with pytest.raises(ValueError, match="unknown scenario fields"):
            ScenarioSpec.from_dict(data)

    def test_saved_file_is_plain_json(self, tmp_path):
        path = tmp_path / "spec.json"
        ScenarioSpec().save(path)
        data = json.loads(path.read_text())
        assert data["clock_margin"] == 1.15
        assert data["hazard"]["weights"][0] == pytest.approx(0.08)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert ScenarioSpec().fingerprint() == ScenarioSpec().fingerprint()

    def test_sensitive_to_every_knob(self):
        base = ScenarioSpec().fingerprint()
        assert ScenarioSpec(seed=1).fingerprint() != base
        assert ScenarioSpec(gate_seed=1).fingerprint() != base
        assert ScenarioSpec(clock_margin=1.2).fingerprint() != base
        assert ScenarioSpec(
            variation=VariationSpec(em_sigma=0.3)).fingerprint() != base

    def test_with_seed_only_changes_seed(self):
        spec = ScenarioSpec(clock_margin=1.3)
        reseeded = spec.with_seed(7)
        assert reseeded.seed == 7
        assert reseeded.clock_margin == 1.3
        assert reseeded.fingerprint() != spec.fingerprint()


class TestDerivedScenario:
    def test_aging_scenario_carries_models(self):
        spec = ScenarioSpec(bti=BtiModel(amplitude=0.05), gate_seed=4,
                            stress_spread=0.2)
        scen = spec.aging_scenario()
        assert scen.bti.amplitude == 0.05
        assert scen.seed == 4
        assert scen.stress_spread == 0.2
