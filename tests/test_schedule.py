"""Tests for the two-step schedule optimization."""

from __future__ import annotations

import pytest

from repro.scheduling.schedule import (
    FF_ONLY_CONFIG,
    ScheduleEntry,
    optimize_schedule,
    order_periods_fault_dropping,
    target_ranges,
)
from repro.scheduling.discretize import PeriodCandidate
from repro.utils.intervals import Interval


class TestScheduleResult:
    @pytest.fixture()
    def prop(self, flow_result_small):
        return flow_result_small.schedules["prop"]

    def test_full_coverage(self, flow_result_small, prop):
        assert prop.covered == prop.targets
        assert prop.coverage == 1.0

    def test_entries_use_selected_periods(self, prop):
        period_set = set(prop.periods)
        for e in prop.entries:
            assert any(abs(e.period - p) < 1e-9 for p in period_set)

    def test_periods_within_window(self, flow_result_small, prop):
        clock = flow_result_small.clock
        for p in prop.periods:
            assert clock.t_min - 1e-9 <= p <= clock.t_nom + 1e-9

    def test_every_target_detected_by_some_entry(self, flow_result_small, prop):
        """Re-verify the schedule against the detection data."""
        data = flow_result_small.data
        configs = flow_result_small.configs
        for fi in prop.targets:
            detected = False
            for e in prop.entries:
                fpr = data.ranges.get(fi, {}).get(e.pattern)
                if fpr is None:
                    continue
                if fpr.i_all.contains(e.period):
                    detected = True
                    break
                if e.config >= 0 and fpr.i_mon.shifted(
                        configs[e.config]).contains(e.period):
                    detected = True
                    break
            assert detected, f"fault {fi} not covered by the schedule"

    def test_naive_size_and_reduction(self, flow_result_small, prop):
        n_p = len(flow_result_small.test_set)
        n_c = len(flow_result_small.configs)
        naive = prop.naive_size(n_p, n_c)
        assert naive == n_p * (n_c + 1) * prop.num_frequencies
        red = prop.reduction_percent(n_p, n_c)
        assert 0.0 <= red < 100.0
        assert red == pytest.approx((1 - prop.num_entries / naive) * 100.0)

    def test_entries_at(self, prop):
        if prop.periods:
            p = prop.periods[0]
            assert all(e.period == p for e in prop.entries_at(p))


class TestSolverComparison:
    def test_ilp_no_worse_than_greedy(self, flow_result_small):
        prop = flow_result_small.schedules["prop"]
        heur = flow_result_small.schedules["heur"]
        assert prop.num_frequencies <= heur.num_frequencies

    def test_unknown_solver_rejected(self, flow_result_small):
        data = flow_result_small.data
        cls = flow_result_small.classification
        with pytest.raises(ValueError, match="unknown solver"):
            optimize_schedule(data, cls.target, flow_result_small.clock,
                              flow_result_small.configs, solver="magic")


class TestPartialCoverage:
    def test_relaxed_coverage_fewer_freqs(self, flow_result_small):
        full = flow_result_small.schedules["prop"]
        for cov, sched in flow_result_small.coverage_schedules.items():
            assert sched.num_frequencies <= full.num_frequencies
            assert sched.coverage >= cov - 1e-9

    def test_monotone_in_coverage(self, flow_result_small):
        items = sorted(flow_result_small.coverage_schedules.items())
        for (cov_a, a), (cov_b, b) in zip(items, items[1:]):
            assert cov_a < cov_b
            assert a.num_frequencies <= b.num_frequencies


class TestHelpers:
    def test_order_periods_fault_dropping(self):
        c1 = PeriodCandidate(1.0, Interval(0.5, 1.5),
                             frozenset({1, 2, 3}))
        c2 = PeriodCandidate(2.0, Interval(1.5, 2.5), frozenset({3, 4}))
        ordered = order_periods_fault_dropping([c2, c1],
                                               frozenset({1, 2, 3, 4}))
        assert ordered[0][0] is c1
        assert ordered[0][1] == frozenset({1, 2, 3})
        assert ordered[1][1] == frozenset({4})  # 3 was dropped

    def test_order_skips_empty_contribution(self):
        c1 = PeriodCandidate(1.0, Interval(0.5, 1.5), frozenset({1}))
        c2 = PeriodCandidate(2.0, Interval(1.5, 2.5), frozenset({1}))
        ordered = order_periods_fault_dropping([c1, c2], frozenset({1}))
        assert len(ordered) == 1

    def test_target_ranges_excludes_unobservable(self, flow_result_small):
        data = flow_result_small.data
        cls = flow_result_small.classification
        clock = flow_result_small.clock
        ranges = target_ranges(data, cls.timing_redundant, clock,
                               flow_result_small.configs)
        assert ranges == {}

    def test_empty_targets(self, flow_result_small):
        sched = optimize_schedule(
            flow_result_small.data, set(), flow_result_small.clock,
            flow_result_small.configs)
        assert sched.num_frequencies == 0
        assert sched.num_entries == 0
        assert sched.coverage == 1.0


class TestConventionalMode:
    def test_ff_only_entries(self, flow_result_small):
        conv = flow_result_small.schedules["conv"]
        assert all(e.config == FF_ONLY_CONFIG for e in conv.entries)

    def test_conv_covers_its_targets(self, flow_result_small):
        conv = flow_result_small.schedules["conv"]
        data = flow_result_small.data
        for fi in conv.targets:
            assert any(
                data.ranges.get(fi, {}).get(e.pattern) is not None
                and data.ranges[fi][e.pattern].i_all.contains(e.period)
                for e in conv.entries)
