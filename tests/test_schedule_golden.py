"""Golden equivalence: bitset scheduler vs the retained seed pipeline.

The bitset rebuild (PR 3) must not change *what* gets scheduled, only how
fast.  On the golden circuits (s27, c17, gen60) every workload the perf
baseline times — conventional targets, greedy, proposed ILP and the two
relaxed coverage targets — is run through both `optimize_schedule` and
`optimize_schedule_reference` and the results compared:

* at full coverage the candidate counts, selected periods, covered fault
  sets, per-period fault assignment and entry counts must be *identical*;
  the exact (pattern, config) picks may differ only where the step-2 ILP
  has equal-cardinality ties, so instead of pinning them the new entries
  are re-validated as covers of their period's fault set,
* at partial coverage both pipelines are exact, so the number of selected
  frequencies must match, but the aggregated ILP may land on a different
  equal-cardinality optimum — there the assertion is feasibility (both
  reach the required fault count) plus equal frequency counts.

Greedy is fully deterministic in both pipelines, so there the entries
themselves must be identical too.
"""

from __future__ import annotations

import math

import pytest

from repro.circuits.library import embedded_circuit
from repro.core import FlowConfig, HdfTestFlow
from repro.scheduling.baselines import conventional_targets
from repro.scheduling.discretize import discretize_observation_times
from repro.scheduling.reference import (
    discretize_observation_times_reference,
    optimize_schedule_reference,
    target_ranges_reference,
)
from repro.scheduling.schedule import _pattern_config_subsets, optimize_schedule


@pytest.fixture(scope="session")
def flow_result_c17():
    return HdfTestFlow(embedded_circuit("c17"), FlowConfig(atpg_seed=3)).run()


GOLDEN = ("flow_result_s27", "flow_result_c17", "flow_result_small")


def _workload(res):
    cls = res.classification
    return [
        ("conv", conventional_targets(cls), None, "ilp", 1.0),
        ("heur", cls.target, res.configs, "greedy", 1.0),
        ("prop", cls.target, res.configs, "ilp", 1.0),
        ("cov95", cls.target, res.configs, "ilp", 0.95),
        ("cov90", cls.target, res.configs, "ilp", 0.90),
    ]


def _clear_caches(data):
    data._sched_cache.clear()
    data._det_range.clear()


@pytest.mark.parametrize("fixture", GOLDEN)
def test_candidates_identical(fixture, request):
    res = request.getfixturevalue(fixture)
    _clear_caches(res.data)
    ranges = target_ranges_reference(res.data, res.classification.target,
                                     res.clock, res.configs)
    for prune in (False, True):
        new = discretize_observation_times(
            ranges, res.clock.t_min, res.clock.t_nom, prune_dominated=prune)
        ref = discretize_observation_times_reference(
            ranges, res.clock.t_min, res.clock.t_nom, prune_dominated=prune)
        assert [c.faults for c in new] == [c.faults for c in ref]
        assert [c.time for c in new] == pytest.approx(
            [c.time for c in ref], abs=1e-9)
        assert [(c.segment.lo, c.segment.hi) for c in new] == pytest.approx(
            [(c.segment.lo, c.segment.hi) for c in ref], abs=1e-9)


@pytest.mark.parametrize("fixture", GOLDEN)
def test_schedules_equivalent(fixture, request):
    res = request.getfixturevalue(fixture)
    _clear_caches(res.data)
    schedulable = None        # full-coverage covered set == coverable universe
    for label, targets, configs, solver, cov in _workload(res):
        new = optimize_schedule(res.data, targets, res.clock, configs,
                                solver=solver, coverage=cov)
        ref = optimize_schedule_reference(res.data, targets, res.clock,
                                          configs, solver=solver,
                                          coverage=cov)
        assert new.num_candidates == ref.num_candidates, label
        assert len(new.periods) == len(ref.periods), label
        if cov >= 1.0:
            assert new.periods == pytest.approx(ref.periods, abs=1e-9), label
            assert new.covered == ref.covered, label
            assert new.per_period_faults == ref.per_period_faults, label
            assert len(new.entries) == len(ref.entries), label
            if label == "prop":
                schedulable = ref.covered
        else:
            # Partial coverage: the aggregated ILP may land on a different
            # equal-cardinality optimum; both must reach the target count.
            need = math.ceil(cov * len(schedulable) - 1e-9)
            assert len(new.covered) >= need, label
            assert len(ref.covered) >= need, label
        if solver == "greedy":
            assert new.entries == ref.entries, label
        # The step-2 picks must still cover every fault assigned to their
        # period, whichever optimum the ILP tie-breaking landed on.
        for period, fault_set in new.per_period_faults.items():
            combos = _pattern_config_subsets(res.data, fault_set, period,
                                             configs)
            covered = set()
            for e in new.entries:
                if e.period == period:
                    covered |= combos[(e.pattern, e.config)]
            assert covered >= fault_set, (label, period)


@pytest.mark.parametrize("fixture", GOLDEN)
def test_parallel_step2_matches_sequential(fixture, request):
    res = request.getfixturevalue(fixture)
    cls = res.classification
    _clear_caches(res.data)
    seq = optimize_schedule(res.data, cls.target, res.clock, res.configs,
                            solver="greedy")
    par = optimize_schedule(res.data, cls.target, res.clock, res.configs,
                            solver="greedy", jobs=2)
    assert par.periods == seq.periods
    assert par.entries == seq.entries
    assert par.per_period_faults == seq.per_period_faults
