"""Brute-force optimality checks for the two-step schedule optimization.

Small synthetic detection-data instances are built directly (no circuit or
simulation involved), the ILP schedule is computed, and exhaustive
enumeration confirms that no schedule with fewer frequencies exists —
i.e. step 1 really solves the covering problem optimally (Sec. IV-C).
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.patterns import PatternPair, TestSet
from repro.faults.detection import DetectionData, FaultPatternRange
from repro.faults.models import FaultSite, SmallDelayFault
from repro.monitors.monitor import MonitorConfigSet
from repro.netlist.circuit import Circuit, GateKind
from repro.scheduling.schedule import optimize_schedule
from repro.timing.clock import ClockSpec
from repro.utils.intervals import IntervalSet


T_NOM = 300.0
CLOCK = ClockSpec(T_NOM)
CONFIGS = MonitorConfigSet.paper_default(T_NOM)


def _dummy_circuit() -> Circuit:
    c = Circuit("dummy")
    a = c.add_input("a")
    g = c.add_gate("g", GateKind.NOT, [a])
    c.mark_output(g)
    return c.finalize()


def make_data(fault_ranges: list[list[tuple[float, float]]],
              n_patterns: int = 3, seed: int = 0) -> DetectionData:
    """Synthetic DetectionData: fault i has the given raw FF intervals,
    split randomly across patterns; no monitor ranges."""
    rng = random.Random(seed)
    circuit = _dummy_circuit()
    width = len(circuit.sources())
    patterns = TestSet(circuit, [
        PatternPair((0,) * width, (1,) * width) for _ in range(n_patterns)])
    faults = [SmallDelayFault(FaultSite(1), True, float(i + 1))
              for i in range(len(fault_ranges))]
    data = DetectionData(circuit=circuit, faults=faults, patterns=patterns,
                         horizon=T_NOM, monitored_gates=frozenset())
    for fi, intervals in enumerate(fault_ranges):
        for iv in intervals:
            pi = rng.randrange(n_patterns)
            data.add(fi, pi, FaultPatternRange(
                i_all=IntervalSet.from_pairs([iv]),
                i_mon=IntervalSet.empty()))
    return data


def brute_force_min_frequencies(data: DetectionData,
                                targets: set[int]) -> int:
    """Smallest number of periods covering all targets, by enumeration over
    the candidate midpoints of the union ranges."""
    ranges = {fi: data.union_all(fi).clipped(CLOCK.t_min, T_NOM)
              for fi in targets}
    ranges = {fi: r for fi, r in ranges.items() if not r.is_empty}
    boundaries = sorted({b for r in ranges.values() for b in r.boundaries()})
    candidates = sorted({(a + b) / 2 for a, b in zip(boundaries,
                                                     boundaries[1:])}
                        | set(boundaries))
    covers = {
        t: frozenset(fi for fi, r in ranges.items() if r.contains(t))
        for t in candidates
    }
    universe = frozenset(ranges)
    for k in range(1, len(candidates) + 1):
        for combo in itertools.combinations(candidates, k):
            got = frozenset().union(*(covers[t] for t in combo))
            if got >= universe:
                return k
    return 0


intervals_strategy = st.lists(
    st.tuples(st.floats(min_value=T_NOM / 3, max_value=T_NOM - 1,
                        allow_nan=False),
              st.floats(min_value=2.0, max_value=60.0, allow_nan=False)),
    min_size=1, max_size=2)


@st.composite
def instances(draw):
    n_faults = draw(st.integers(2, 6))
    fault_ranges = []
    for _ in range(n_faults):
        ivs = draw(intervals_strategy)
        fault_ranges.append([(lo, min(T_NOM, lo + width))
                             for lo, width in ivs])
    return fault_ranges


@settings(max_examples=25, deadline=None)
@given(instances())
def test_ilp_frequency_count_is_optimal(fault_ranges):
    data = make_data(fault_ranges)
    targets = set(range(len(fault_ranges)))
    sched = optimize_schedule(data, targets, CLOCK, configs=None,
                              solver="ilp")
    optimal = brute_force_min_frequencies(data, targets)
    assert sched.num_frequencies == optimal
    assert sched.covered == frozenset(targets)


@settings(max_examples=15, deadline=None)
@given(instances())
def test_greedy_never_beats_ilp(fault_ranges):
    data = make_data(fault_ranges)
    targets = set(range(len(fault_ranges)))
    ilp = optimize_schedule(data, targets, CLOCK, configs=None, solver="ilp")
    greedy = optimize_schedule(data, targets, CLOCK, configs=None,
                               solver="greedy")
    assert ilp.num_frequencies <= greedy.num_frequencies


def test_step2_single_pattern_suffices_when_shared():
    """Faults detectable by one pattern at one period need one entry."""
    data = make_data([[(150.0, 200.0)], [(150.0, 200.0)]],
                     n_patterns=1)
    sched = optimize_schedule(data, {0, 1}, CLOCK, configs=None)
    assert sched.num_frequencies == 1
    assert sched.num_entries == 1


def test_step2_distinct_patterns_need_two_entries():
    data = make_data([[(150.0, 200.0)], [(150.0, 200.0)]],
                     n_patterns=2, seed=3)
    # Force the two faults onto different patterns.
    data.ranges[0] = {0: data.ranges[0][list(data.ranges[0])[0]]}
    data.ranges[1] = {1: data.ranges[1][list(data.ranges[1])[0]]}
    data._union_all.clear()
    sched = optimize_schedule(data, {0, 1}, CLOCK, configs=None)
    assert sched.num_frequencies == 1
    assert sched.num_entries == 2
