"""Tests for the SDF subset reader/writer."""

from __future__ import annotations

import pytest

from repro.netlist.sdf import SdfParseError, apply_sdf, parse_sdf, save_sdf, load_sdf, write_sdf


class TestWriter:
    def test_contains_every_gate(self, s27):
        text = write_sdf(s27)
        for g in s27.gates:
            if g.pin_delays:
                assert f"(INSTANCE {g.name})" in text

    def test_header(self, s27):
        text = write_sdf(s27, design="mydesign")
        assert '(DESIGN "mydesign")' in text
        assert "(TIMESCALE 1ps)" in text


class TestRoundTrip:
    def test_write_apply_identity(self, s27):
        text = write_sdf(s27)
        original = {g.name: g.pin_delays for g in s27.gates if g.pin_delays}
        # Perturb, then restore from SDF.
        for g in s27.gates:
            if g.pin_delays:
                g.pin_delays = tuple((r * 3, f * 3) for r, f in g.pin_delays)
        applied = apply_sdf(s27, text)
        assert applied == len(original)
        for name, delays in original.items():
            got = s27.gate_by_name(name).pin_delays
            for (r0, f0), (r1, f1) in zip(delays, got):
                assert r1 == pytest.approx(r0, abs=1e-3)
                assert f1 == pytest.approx(f0, abs=1e-3)

    def test_save_load(self, tmp_path, tiny_circuit):
        path = tmp_path / "tiny.sdf"
        save_sdf(tiny_circuit, path)
        assert load_sdf(tiny_circuit, path) > 0


class TestParser:
    def test_triple_forms(self):
        text = """(DELAYFILE (TIMESCALE 1ps)
        (CELL (CELLTYPE "X") (INSTANCE g)
          (DELAY (ABSOLUTE (IOPATH in0 out (1.0:2.0:3.0) (4.0) )))
        ))"""
        delays = parse_sdf(text)
        assert delays["g"] == [(2.0, 4.0)]

    def test_timescale_ns(self):
        text = """(DELAYFILE (TIMESCALE 1ns)
        (CELL (CELLTYPE "X") (INSTANCE g)
          (DELAY (ABSOLUTE (IOPATH in0 out (0.014::0.014) (0.011::0.011))))
        ))"""
        delays = parse_sdf(text)
        assert delays["g"][0][0] == pytest.approx(14.0)

    def test_pins_sorted_by_index(self):
        text = """(DELAYFILE
        (CELL (CELLTYPE "X") (INSTANCE g)
          (DELAY (ABSOLUTE
            (IOPATH in1 out (2.0::2.0) (2.0::2.0))
            (IOPATH in0 out (1.0::1.0) (1.0::1.0))
          )))
        )"""
        delays = parse_sdf(text)
        assert delays["g"] == [(1.0, 1.0), (2.0, 2.0)]

    def test_unsupported_pin_name(self):
        text = """(DELAYFILE (CELL (CELLTYPE "X") (INSTANCE g)
          (DELAY (ABSOLUTE (IOPATH A out (1::1) (1::1)))) ))"""
        with pytest.raises(SdfParseError, match="unsupported IOPATH"):
            parse_sdf(text)

    def test_cell_without_instance(self):
        with pytest.raises(SdfParseError, match="INSTANCE"):
            parse_sdf("(DELAYFILE (CELL (CELLTYPE \"X\")))")

    def test_bad_delay_value(self):
        text = """(DELAYFILE (CELL (CELLTYPE "X") (INSTANCE g)
          (DELAY (ABSOLUTE (IOPATH in0 out (oops::1) (1::1)))) ))"""
        with pytest.raises(SdfParseError):
            parse_sdf(text)


class TestApply:
    def test_strict_unknown_instance(self, tiny_circuit):
        text = """(DELAYFILE (CELL (CELLTYPE "X") (INSTANCE ghost)
          (DELAY (ABSOLUTE (IOPATH in0 out (1::1) (1::1)))) ))"""
        with pytest.raises(SdfParseError, match="not in circuit"):
            apply_sdf(tiny_circuit, text)
        assert apply_sdf(tiny_circuit, text, strict=False) == 0

    def test_strict_pin_mismatch(self, tiny_circuit):
        text = """(DELAYFILE (CELL (CELLTYPE "X") (INSTANCE G1)
          (DELAY (ABSOLUTE (IOPATH in0 out (1::1) (1::1)))) ))"""
        with pytest.raises(SdfParseError, match="pins"):
            apply_sdf(tiny_circuit, text)  # G1 is a 2-input NAND
