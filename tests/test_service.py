"""Service layer: facade equivalence, orchestrator dedupe, HTTP API.

The facade (:func:`repro.service.orchestrator.run_job`) must be
output-identical to driving the underlying pipelines directly — the CLI
and the HTTP service share it, so these are the golden tests pinning the
refactor.  The orchestrator tests pin the dedupe contract: identical
in-flight submissions execute once, repeats after completion replay from
the stage store.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.spec import FleetJob, FlowJob, ReschedJob, ScenarioSpec, SuiteJob
from repro.experiments.artifact_cache import StageCache
from repro.service.orchestrator import (
    Orchestrator,
    resolve_circuit,
    run_job,
)
from repro.service.server import HdfService


# ----------------------------------------------------------------------
# Circuit resolution
# ----------------------------------------------------------------------
class TestResolveCircuit:
    def test_embedded_name(self):
        assert resolve_circuit("s27").name == "s27"

    def test_suite_name(self):
        assert resolve_circuit("s9234").name == "s9234"

    def test_bench_file(self, tmp_path, s27):
        from repro.netlist.bench import save_bench

        path = tmp_path / "mine.bench"
        save_bench(s27, path)
        assert resolve_circuit(str(path)).stats() == s27.stats()

    def test_unknown_spec_is_actionable(self):
        from repro.core.spec import SpecError

        with pytest.raises(SpecError, match="cannot resolve circuit"):
            resolve_circuit("never-a-circuit")


# ----------------------------------------------------------------------
# Facade golden equivalence (CLI == service == direct pipeline)
# ----------------------------------------------------------------------
class TestFacadeEquivalence:
    def test_flow_job_matches_direct_flow(self, s27):
        from repro.core import FlowConfig, HdfTestFlow

        outcome = run_job(FlowJob(circuit="s27"), store=None)
        direct = HdfTestFlow(s27, FlowConfig()).run()
        assert outcome.value.table1_row() == direct.table1_row()
        assert outcome.value.table2_row() == direct.table2_row()
        assert outcome.payload["table1"] == direct.table1_row()
        assert outcome.cache == "uncached"
        assert outcome.fingerprint == FlowJob(circuit="s27").fingerprint()

    def test_fleet_job_matches_direct_study(self, s27):
        from repro.experiments.fleet import run_fleet_study

        job = FleetJob(circuit="s27", devices=32,
                       scenario=ScenarioSpec(seed=2))
        outcome = run_job(job, store=None)
        direct = run_fleet_study(s27, spec=job.scenario, devices=32,
                                 use_cache=False)
        assert outcome.value.summary()["metrics"] == \
            direct.summary()["metrics"]
        assert outcome.payload["scenario"] == job.scenario.fingerprint()

    def test_suite_job_matches_direct_suite(self):
        from repro.experiments.runner import SuiteRunConfig, run_suite

        job = SuiteJob(names=("s9234",), scale=0.25,
                       with_schedules=False)
        outcome = run_job(job, store=None)
        direct = run_suite(SuiteRunConfig(names=("s9234",), scale=0.25,
                                          with_schedules=False))
        assert outcome.value["s9234"].table1_row() == \
            direct["s9234"].table1_row()
        assert outcome.payload["results"]["s9234"]["faults"] == \
            direct["s9234"].classification.num_faults

    def test_resched_job_replay_is_deterministic(self):
        job = ReschedJob(circuit="s27", alerts=(((13, 2.0),),
                                                ((16, 1.0),)))
        a = run_job(job, store=None)
        b = run_job(job, store=None)
        assert a.payload["initial"] == b.payload["initial"]
        assert [e["covered"] for e in a.payload["events"]] == \
            [e["covered"] for e in b.payload["events"]]
        assert a.payload["summary"]["alerts"] == 2

    def test_store_round_trip_hits_every_stage(self, tmp_path):
        store = StageCache(tmp_path)
        first = run_job(FlowJob(circuit="s27"), store=store)
        second = run_job(FlowJob(circuit="s27"), store=store)
        assert first.cache == "miss"
        assert second.cache == "hit"
        assert second.payload["table1"] == first.payload["table1"]

    def test_progress_events_cover_stages(self):
        events = []
        run_job(FlowJob(circuit="s27", with_schedules=False),
                store=None, progress=events.append)
        kinds = {e["event"] for e in events}
        assert "log" in kinds and "stage" in kinds
        stages = {e["stage"] for e in events if e["event"] == "stage"}
        assert {"sta", "atpg", "simulation"} <= stages


# ----------------------------------------------------------------------
# Orchestrator dedupe
# ----------------------------------------------------------------------
class _Loop:
    """A background asyncio loop the tests drive the orchestrator on."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result()

    def close(self):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5.0)


@pytest.fixture()
def loop():
    background = _Loop()
    yield background
    background.close()


def _wait_terminal(orch, job_id, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        record = orch.get(job_id)
        if record.terminal:
            return record
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} did not finish")


JOB = FlowJob(circuit="s27", with_schedules=False)


class TestOrchestrator:
    def test_identical_inflight_submissions_execute_once(self, loop):
        orch = Orchestrator(store=None, workers=2)
        # Submit both before starting the workers: the second MUST
        # attach to the first, not race it to the queue.
        first = loop.call(orch.submit(JOB))
        second = loop.call(orch.submit(JOB))
        assert second.dedup_of == first.id
        loop.call(orch.start())
        try:
            done_first = _wait_terminal(orch, first.id)
            done_second = _wait_terminal(orch, second.id)
            assert done_first.state == done_second.state == "done"
            assert done_first.cache == "uncached"   # store=None
            assert done_second.cache == "dedup"
            assert done_second.payload == done_first.payload
        finally:
            loop.call(orch.close())

    def test_resubmission_after_completion_replays_from_store(
            self, loop, tmp_path):
        orch = Orchestrator(store=StageCache(tmp_path), workers=1)
        loop.call(orch.start())
        try:
            first = loop.call(orch.submit(JOB))
            assert _wait_terminal(orch, first.id).cache == "miss"
            again = loop.call(orch.submit(JOB))
            assert again.dedup_of is None           # not in flight anymore
            done = _wait_terminal(orch, again.id)
            assert done.cache == "hit"
            # Stage timings differ between the cold and replay runs;
            # the result rows must not.
            assert done.payload["table1"] == \
                orch.get(first.id).payload["table1"]
        finally:
            loop.call(orch.close())

    def test_different_fingerprints_do_not_dedupe(self, loop):
        orch = Orchestrator(store=None, workers=1)
        a = loop.call(orch.submit(JOB))
        b = loop.call(orch.submit(FlowJob(circuit="c17",
                                          with_schedules=False)))
        assert a.dedup_of is None and b.dedup_of is None

    def test_cancel_queued_job_frees_the_slot(self, loop):
        orch = Orchestrator(store=None, workers=1)
        first = loop.call(orch.submit(JOB))
        assert loop.call(orch.cancel(first.id))
        assert orch.get(first.id).state == "cancelled"
        follow = loop.call(orch.submit(JOB))
        assert follow.dedup_of is None              # slot was freed
        assert not loop.call(orch.cancel(first.id))  # already terminal

    def test_execution_failure_is_reported_not_raised(self, loop):
        orch = Orchestrator(store=None, workers=1)
        loop.call(orch.start())
        try:
            record = loop.call(orch.submit(
                FlowJob(circuit="never-a-circuit")))
            done = _wait_terminal(orch, record.id)
            assert done.state == "failed"
            assert "cannot resolve circuit" in done.error
        finally:
            loop.call(orch.close())

    def test_event_log_orders_lifecycle(self, loop):
        orch = Orchestrator(store=None, workers=1)
        loop.call(orch.start())
        try:
            record = loop.call(orch.submit(JOB))
            _wait_terminal(orch, record.id)
            events, terminal = orch.events_since(record.id)
            assert terminal
            kinds = [e["event"] for e in events]
            assert kinds[0] == "queued"
            assert kinds[1] == "started"
            assert kinds[-1] == "done"
            assert "stage" in kinds
            assert [e["seq"] for e in events] == list(range(len(events)))
        finally:
            loop.call(orch.close())


# ----------------------------------------------------------------------
# HTTP API
# ----------------------------------------------------------------------
def _get(url: str) -> dict:
    with urllib.request.urlopen(url) as resp:
        return json.loads(resp.read())


def _post(url: str, document) -> dict:
    req = urllib.request.Request(
        url, data=json.dumps(document).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    svc = HdfService(host="127.0.0.1", port=0,
                     store=StageCache(tmp_path_factory.mktemp("svc")),
                     workers=1).start()
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    yield svc
    svc.shutdown()


def _wait_done(service, job_id, timeout=60.0) -> dict:
    deadline = time.time() + timeout
    while time.time() < deadline:
        status = _get(f"{service.url}/jobs/{job_id}")
        if status["state"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish over HTTP")


class TestHttpApi:
    def test_healthz(self, service):
        assert _get(f"{service.url}/healthz")["ok"] is True

    def test_submit_status_result_and_cached_resubmit(self, service):
        document = {"kind": "flow", "circuit": "s27",
                    "with_schedules": False}
        submitted = _post(f"{service.url}/jobs", document)
        assert submitted["kind"] == "flow"
        status = _wait_done(service, submitted["id"])
        assert status["state"] == "done"
        result = _get(f"{service.url}/jobs/{submitted['id']}/result")
        assert result["result"]["circuit"] == "s27"
        assert "table1" in result["result"]

        again = _post(f"{service.url}/jobs", document)
        assert again["fingerprint"] == submitted["fingerprint"]
        final = _wait_done(service, again["id"])
        assert final["cache"] in ("hit", "dedup")

    def test_stream_delivers_lifecycle_events(self, service):
        submitted = _post(f"{service.url}/jobs",
                          {"kind": "flow", "circuit": "c17",
                           "with_schedules": False})
        with urllib.request.urlopen(
                f"{service.url}/jobs/{submitted['id']}/stream") as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            events = [json.loads(line) for line in resp if line.strip()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] in ("done", "failed")
        assert all(e["job"] == submitted["id"] for e in events)

    def test_events_endpoint_paginates(self, service):
        submitted = _post(f"{service.url}/jobs",
                          {"kind": "flow", "circuit": "s27",
                           "with_schedules": False})
        _wait_done(service, submitted["id"])
        page = _get(f"{service.url}/jobs/{submitted['id']}/events")
        assert page["terminal"] is True
        rest = _get(f"{service.url}/jobs/{submitted['id']}/events"
                    f"?since={len(page['events'])}")
        assert rest["events"] == []

    def test_bad_document_is_400_with_message(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{service.url}/jobs", {"kind": "warp"})
        assert err.value.code == 400
        assert "unknown job kind" in json.loads(err.value.read())["error"]

    def test_unknown_job_is_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{service.url}/jobs/job-9999")
        assert err.value.code == 404

    def test_jobs_listing_grows(self, service):
        before = len(_get(f"{service.url}/jobs")["jobs"])
        _post(f"{service.url}/jobs", {"kind": "flow", "circuit": "s27",
                                      "with_schedules": False})
        assert len(_get(f"{service.url}/jobs")["jobs"]) == before + 1
