"""Tests for the set-covering solvers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduling.setcover import (
    CoverProblem,
    branch_and_bound_cover,
    greedy_cover,
    ilp_cover,
)


def problem(*subsets):
    return CoverProblem(subsets=[frozenset(s) for s in subsets])


class TestCoverProblem:
    def test_universe_inferred(self):
        p = problem({1, 2}, {3})
        assert p.universe == frozenset({1, 2, 3})

    def test_uncoverable_universe_rejected(self):
        with pytest.raises(ValueError, match="not coverable"):
            CoverProblem(subsets=[frozenset({1})],
                         universe=frozenset({1, 2}))

    def test_required_count(self):
        p = problem({1}, {2}, {3}, {4})
        assert p.required_count(1.0) == 4
        assert p.required_count(0.5) == 2
        assert p.required_count(0.51) == 3
        with pytest.raises(ValueError):
            p.required_count(0.0)

    def test_covered_by(self):
        p = problem({1, 2}, {2, 3})
        assert p.covered_by([1]) == frozenset({2, 3})


class TestGreedy:
    def test_simple(self):
        p = problem({1, 2, 3}, {1}, {4})
        chosen = greedy_cover(p)
        assert p.covered_by(chosen) == p.universe

    def test_partial_coverage(self):
        p = problem({1, 2, 3, 4}, {5}, {6})
        chosen = greedy_cover(p, coverage=0.6)
        assert len(p.covered_by(chosen)) >= 4

    def test_greedy_suboptimal_instance(self):
        # Classic instance where greedy picks 3 sets but optimum is 2.
        p = problem({1, 2, 3, 4}, {5, 6, 7}, {1, 2, 5, 6}, {3, 4, 7})
        greedy = greedy_cover(p)
        exact = ilp_cover(p)
        assert len(exact) <= len(greedy)
        assert len(exact) == 2


class TestIlp:
    def test_optimal_small(self):
        p = problem({1, 2}, {2, 3}, {1, 3}, {1, 2, 3})
        assert len(ilp_cover(p)) == 1

    def test_feasible_cover(self):
        p = problem({1, 2}, {3}, {4, 5}, {2, 3, 4})
        chosen = ilp_cover(p)
        assert p.covered_by(chosen) == p.universe

    def test_partial_coverage_counts(self):
        p = problem({1}, {2}, {3}, {4}, {5})
        chosen = ilp_cover(p, coverage=0.6)
        assert len(chosen) == 3  # each subset covers exactly one element

    def test_empty_problem(self):
        assert ilp_cover(CoverProblem(subsets=[])) == []


class TestBranchAndBound:
    def test_matches_ilp_on_small_instances(self):
        p = problem({1, 2, 3, 4}, {5, 6, 7}, {1, 2, 5, 6}, {3, 4, 7},
                    {1, 5}, {2, 6})
        assert len(branch_and_bound_cover(p)) == len(ilp_cover(p))

    def test_returns_greedy_when_budget_exhausted(self):
        p = problem({1, 2}, {2, 3}, {3, 1})
        chosen = branch_and_bound_cover(p, max_nodes=1)
        assert p.covered_by(chosen) == p.universe


# ----------------------------------------------------------------------
# Property: all three solvers return feasible covers; exact ones agree on
# cardinality and are never worse than greedy.
# ----------------------------------------------------------------------
@st.composite
def random_problems(draw):
    n_elements = draw(st.integers(1, 10))
    n_subsets = draw(st.integers(1, 8))
    subsets = []
    for _ in range(n_subsets):
        s = draw(st.sets(st.integers(0, n_elements - 1), min_size=1))
        subsets.append(frozenset(s))
    # Guarantee coverability.
    subsets.append(frozenset(range(n_elements)))
    return CoverProblem(subsets=subsets)


@settings(max_examples=40, deadline=None)
@given(random_problems())
def test_property_solvers_agree(p):
    greedy = greedy_cover(p)
    exact_ilp = ilp_cover(p)
    exact_bb = branch_and_bound_cover(p)
    for chosen in (greedy, exact_ilp, exact_bb):
        assert p.covered_by(chosen) >= p.universe
    assert len(exact_ilp) == len(exact_bb)
    assert len(exact_ilp) <= len(greedy)


@settings(max_examples=20, deadline=None)
@given(random_problems(), st.floats(min_value=0.3, max_value=1.0))
def test_property_partial_coverage_feasible(p, coverage):
    chosen = ilp_cover(p, coverage=coverage)
    assert len(p.covered_by(chosen)) >= p.required_count(coverage)
    # Partial cover never needs more subsets than a full cover.
    assert len(chosen) <= len(ilp_cover(p))
