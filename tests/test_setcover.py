"""Tests for the set-covering solvers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduling.setcover import (
    CoverProblem,
    branch_and_bound_cover,
    greedy_cover,
    ilp_cover,
    presolve_cover,
)


def problem(*subsets):
    return CoverProblem(subsets=[frozenset(s) for s in subsets])


class TestCoverProblem:
    def test_universe_inferred(self):
        p = problem({1, 2}, {3})
        assert p.universe == frozenset({1, 2, 3})

    def test_uncoverable_universe_rejected(self):
        with pytest.raises(ValueError, match="not coverable"):
            CoverProblem(subsets=[frozenset({1})],
                         universe=frozenset({1, 2}))

    def test_required_count(self):
        p = problem({1}, {2}, {3}, {4})
        assert p.required_count(1.0) == 4
        assert p.required_count(0.5) == 2
        assert p.required_count(0.51) == 3
        with pytest.raises(ValueError):
            p.required_count(0.0)

    def test_required_count_edge_cases(self):
        p = problem({1}, {2}, {3}, {4})
        # A hair below 1.0 must not round the full count down...
        assert p.required_count(1.0 - 1e-15) == 4
        # ...and exact fractions must not round up through float noise.
        assert p.required_count(0.75) == 3
        assert p.required_count(0.25) == 1
        # Tiny coverage collapses to "nothing required": all solvers agree
        # the empty selection is optimal.
        assert p.required_count(1e-12) == 0
        assert greedy_cover(p, coverage=1e-12) == []
        assert ilp_cover(p, coverage=1e-12) == []
        assert branch_and_bound_cover(p, coverage=1e-12) == []
        with pytest.raises(ValueError):
            p.required_count(1.0 + 1e-9)

    def test_uncoverable_report_is_deterministic_and_complete(self):
        with pytest.raises(ValueError) as exc:
            CoverProblem(subsets=[frozenset({1})],
                         universe=frozenset({1, 2, 4, 3}))
        assert "3 universe elements not coverable: [2, 3, 4]" in str(exc.value)

    def test_covered_by(self):
        p = problem({1, 2}, {2, 3})
        assert p.covered_by([1]) == frozenset({2, 3})


class TestGreedy:
    def test_simple(self):
        p = problem({1, 2, 3}, {1}, {4})
        chosen = greedy_cover(p)
        assert p.covered_by(chosen) == p.universe

    def test_partial_coverage(self):
        p = problem({1, 2, 3, 4}, {5}, {6})
        chosen = greedy_cover(p, coverage=0.6)
        assert len(p.covered_by(chosen)) >= 4

    def test_greedy_suboptimal_instance(self):
        # Classic instance where greedy picks 3 sets but optimum is 2.
        p = problem({1, 2, 3, 4}, {5, 6, 7}, {1, 2, 5, 6}, {3, 4, 7})
        greedy = greedy_cover(p)
        exact = ilp_cover(p)
        assert len(exact) <= len(greedy)
        assert len(exact) == 2


class TestIlp:
    def test_optimal_small(self):
        p = problem({1, 2}, {2, 3}, {1, 3}, {1, 2, 3})
        assert len(ilp_cover(p)) == 1

    def test_feasible_cover(self):
        p = problem({1, 2}, {3}, {4, 5}, {2, 3, 4})
        chosen = ilp_cover(p)
        assert p.covered_by(chosen) == p.universe

    def test_partial_coverage_counts(self):
        p = problem({1}, {2}, {3}, {4}, {5})
        chosen = ilp_cover(p, coverage=0.6)
        assert len(chosen) == 3  # each subset covers exactly one element

    def test_empty_problem(self):
        assert ilp_cover(CoverProblem(subsets=[])) == []


class TestPresolve:
    def test_solved_outright_by_domination_and_essentials(self):
        # {1}, {2} are dominated by {1, 2, 3}; element 3 then makes the big
        # subset essential — presolve finishes without any ILP component.
        p = problem({1, 2, 3}, {1}, {2})
        red = presolve_cover(p)
        assert red.solved
        assert red.forced == (0,)
        assert red.stats["dominated_columns"] == 2
        assert red.stats["essential_columns"] == 1

    def test_duplicate_columns_keep_lowest_index(self):
        p = problem({1, 2}, {1, 2}, {3})
        red = presolve_cover(p)
        assert red.forced == (0, 2)
        assert red.solved

    def test_forced_columns_in_every_solution(self):
        # Element 5 is only coverable by subset 2: every cover contains it.
        p = problem({1, 2}, {2, 3}, {5}, {1, 3})
        red = presolve_cover(p)
        assert 2 in red.forced
        assert 2 in ilp_cover(p)
        assert 2 in branch_and_bound_cover(p)

    def test_component_splitting(self):
        # Two independent blocks over disjoint elements.
        p = problem({1, 2}, {2, 3}, {1, 3}, {10, 11}, {11, 12}, {10, 12})
        red = presolve_cover(p)
        assert len(red.components) == 2
        cols_a, _masks_a, _ = red.components[0]
        cols_b, _masks_b, _ = red.components[1]
        assert set(cols_a) | set(cols_b) <= {0, 1, 2, 3, 4, 5}
        assert set(cols_a).isdisjoint(cols_b)
        # The split instance still solves to the global optimum.
        assert len(ilp_cover(p)) == len(ilp_cover(p, presolve=False))

    def test_reduction_reconstructs_feasible_cover(self):
        p = problem({1, 2, 3, 4}, {5, 6, 7}, {1, 2, 5, 6}, {3, 4, 7},
                    {1, 5}, {2, 6})
        chosen = ilp_cover(p)
        assert p.covered_by(chosen) >= p.universe
        assert len(chosen) == len(ilp_cover(p, presolve=False))


class TestBranchAndBound:
    def test_matches_ilp_on_small_instances(self):
        p = problem({1, 2, 3, 4}, {5, 6, 7}, {1, 2, 5, 6}, {3, 4, 7},
                    {1, 5}, {2, 6})
        assert len(branch_and_bound_cover(p)) == len(ilp_cover(p))

    def test_returns_greedy_when_budget_exhausted(self):
        p = problem({1, 2}, {2, 3}, {3, 1})
        chosen = branch_and_bound_cover(p, max_nodes=1)
        assert p.covered_by(chosen) == p.universe


# ----------------------------------------------------------------------
# Property: all three solvers return feasible covers; exact ones agree on
# cardinality and are never worse than greedy.
# ----------------------------------------------------------------------
@st.composite
def random_problems(draw):
    n_elements = draw(st.integers(1, 10))
    n_subsets = draw(st.integers(1, 8))
    subsets = []
    for _ in range(n_subsets):
        s = draw(st.sets(st.integers(0, n_elements - 1), min_size=1))
        subsets.append(frozenset(s))
    # Guarantee coverability.
    subsets.append(frozenset(range(n_elements)))
    return CoverProblem(subsets=subsets)


@settings(max_examples=40, deadline=None)
@given(random_problems())
def test_property_solvers_agree(p):
    greedy = greedy_cover(p)
    exact_ilp = ilp_cover(p)
    exact_bb = branch_and_bound_cover(p)
    for chosen in (greedy, exact_ilp, exact_bb):
        assert p.covered_by(chosen) >= p.universe
    assert len(exact_ilp) == len(exact_bb)
    assert len(exact_ilp) <= len(greedy)


@settings(max_examples=20, deadline=None)
@given(random_problems(), st.floats(min_value=0.3, max_value=1.0))
def test_property_partial_coverage_feasible(p, coverage):
    chosen = ilp_cover(p, coverage=coverage)
    assert len(p.covered_by(chosen)) >= p.required_count(coverage)
    # Partial cover never needs more subsets than a full cover.
    assert len(chosen) <= len(ilp_cover(p))


@settings(max_examples=40, deadline=None)
@given(random_problems())
def test_property_presolve_is_lossless(p):
    """Presolved and seed ILPs find equal-cardinality covers (§9 claim)."""
    reduced = ilp_cover(p, presolve=True)
    seed = ilp_cover(p, presolve=False)
    exact = branch_and_bound_cover(p)
    assert p.covered_by(reduced) >= p.universe
    assert len(reduced) == len(seed) == len(exact)
    red = presolve_cover(p)
    assert set(red.forced) <= set(reduced)


@settings(max_examples=25, deadline=None)
@given(random_problems(), st.floats(min_value=0.3, max_value=0.95))
def test_property_partial_solvers_agree(p, coverage):
    """Aggregated partial ILP stays exact: matches B&B, never beats it."""
    need = p.required_count(coverage)
    exact_ilp = ilp_cover(p, coverage=coverage)
    exact_bb = branch_and_bound_cover(p, coverage=coverage)
    heur = greedy_cover(p, coverage=coverage)
    for chosen in (exact_ilp, exact_bb, heur):
        assert len(p.covered_by(chosen)) >= need
    assert len(exact_ilp) == len(exact_bb)
    assert len(exact_ilp) <= len(heur)


# ----------------------------------------------------------------------
# Certificate machinery of the rescheduling engine: lower bounds, the
# deterministic greedy core, and the warm-started presolve must stay
# sound on arbitrary problems — they are what lets an incremental
# re-solve skip the ILP without ever changing the answer.
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(random_problems())
def test_property_bound_variants_agree(p):
    """Int-mask, matrix and masks-wrapper bounds are the same function."""
    from repro.scheduling.setcover import (
        independent_rows_bound,
        independent_rows_bound_masks,
        independent_rows_bound_matrix,
    )
    from repro.utils.bitset import masks_to_matrix

    packed = p.packed()
    n_bits = len(packed.elements)
    scalar = independent_rows_bound(packed.masks, packed.full)
    assert scalar == independent_rows_bound_masks(packed.masks, n_bits)
    assert scalar == independent_rows_bound_matrix(
        masks_to_matrix(packed.masks, n_bits))


@settings(max_examples=50, deadline=None)
@given(random_problems())
def test_property_bound_never_exceeds_optimum(p):
    """The certificate is sound: bound <= exact optimum, and >= 1."""
    from repro.scheduling.setcover import independent_rows_bound

    packed = p.packed()
    bound = independent_rows_bound(packed.masks, packed.full)
    assert 1 <= bound <= len(branch_and_bound_cover(p))


class TestGreedyMasks:
    def test_tie_break_prefers_lowest_index(self):
        from repro.scheduling.setcover import greedy_cover_masks

        # Subsets 0 and 1 offer the same gain; the deterministic
        # (gain, -index) rank must pick subset 0 regardless of order.
        assert greedy_cover_masks([0b011, 0b011, 0b100], 0b111) == [0, 2]
        assert greedy_cover_masks([0b100, 0b011, 0b011], 0b111) == [0, 1]

    def test_need_short_circuits(self):
        from repro.scheduling.setcover import greedy_cover_masks

        assert greedy_cover_masks([0b11, 0b100], 0b111, need=2) == [0]

    def test_infeasible_raises(self):
        from repro.scheduling.setcover import greedy_cover_masks

        with pytest.raises(RuntimeError, match="stalled"):
            greedy_cover_masks([0b01], 0b11)


@settings(max_examples=40, deadline=None)
@given(random_problems(), random_problems())
def test_property_warm_presolve_lossless_even_when_stale(p_prev, p_new):
    """Witnesses from an unrelated problem never change the optimum.

    The rescheduling engine replays dominance witnesses from the previous
    delta; the warm presolve re-verifies each on the new masks, so even a
    deliberately mismatched witness list (here: from an independently
    drawn problem) must leave the reduction lossless.
    """
    from repro.scheduling.setcover import (
        presolve_cover,
        presolve_cover_warm,
        solve_reduction,
    )

    prev = presolve_cover(p_prev)
    warm = presolve_cover_warm(p_new, prev)
    chosen = solve_reduction(warm)
    assert p_new.covered_by(chosen) >= p_new.universe
    assert len(chosen) == len(branch_and_bound_cover(p_new))


@settings(max_examples=40, deadline=None)
@given(random_problems())
def test_property_warm_presolve_self_witness_matches_cold(p):
    """Replaying a problem's own witnesses reproduces the cold reduction's
    optimum (the steady-state path of an unchanged delta)."""
    from repro.scheduling.setcover import (
        presolve_cover,
        presolve_cover_warm,
        solve_reduction,
    )

    cold = presolve_cover(p)
    warm = presolve_cover_warm(p, cold)
    assert len(solve_reduction(warm)) == len(solve_reduction(cold))
