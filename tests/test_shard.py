"""Tests for the sharded suite runner (``repro.experiments.shard``).

Covers the claim-by-rename protocol (exclusivity, stale steal,
heartbeats), work-unit planning (DAG structure, LPT priority), the drain
loop (resume, partial resume, stale-claim reclamation), the fork-based
multi-worker driver (crash recovery with a killed worker), and end-to-end
parity of sharded suite runs against the serial in-process flows.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.circuits.library import suite_entry
from repro.experiments.artifact_cache import StageCache
from repro.experiments.runner import (
    SuiteRunConfig,
    clear_cache,
    run_suite,
    suite_flow,
)
from repro.experiments.shard import (
    ClaimBoard,
    ShardPlan,
    TimedStage,
    WorkUnit,
    drain_units,
    run_plan,
    run_suite_sharded,
    suite_plan,
    suite_timed_specs,
    timed_plan,
)

STAGES = ("sta", "faults", "atpg", "simulation", "classify", "schedule")


def _backdate(path, seconds: float) -> None:
    old = time.time() - seconds
    os.utime(path, times=(old, old))


# ----------------------------------------------------------------------
# Claim board
# ----------------------------------------------------------------------
class TestClaimBoard:
    @pytest.fixture()
    def board(self, tmp_path):
        return ClaimBoard(tmp_path / "claims", ttl=30.0, worker="a")

    def test_claim_is_exclusive(self, board):
        assert board.try_claim("k1")
        assert not board.try_claim("k1")
        board.release("k1")
        assert board.try_claim("k1")

    def test_independent_keys_do_not_interfere(self, board):
        assert board.try_claim("k1")
        assert board.try_claim("k2")

    def test_fresh_claim_is_not_stolen(self, board, tmp_path):
        board.try_claim("k1")
        thief = ClaimBoard(tmp_path / "claims", ttl=30.0, worker="b")
        assert not thief.reclaim_if_stale("k1")
        assert not thief.try_claim("k1")  # still held

    def test_stale_claim_is_stolen_exactly_once(self, board, tmp_path):
        board.try_claim("k1")
        _backdate(board._path("k1"), seconds=120.0)
        thief = ClaimBoard(tmp_path / "claims", ttl=30.0, worker="b")
        other = ClaimBoard(tmp_path / "claims", ttl=30.0, worker="c")
        assert thief.reclaim_if_stale("k1")
        assert not other.reclaim_if_stale("k1")  # already gone
        assert thief.try_claim("k1")  # slot is free again

    def test_missing_claim_is_not_stale(self, board):
        assert board.age("nope") is None
        assert not board.reclaim_if_stale("nope")

    def test_heartbeat_keeps_long_claims_alive(self, tmp_path):
        board = ClaimBoard(tmp_path / "claims", ttl=0.3, worker="a")
        board.try_claim("k1")
        beat = board.heartbeat("k1")
        try:
            time.sleep(0.7)  # > TTL: without heartbeats this would expire
            thief = ClaimBoard(tmp_path / "claims", ttl=0.3, worker="b")
            assert not thief.reclaim_if_stale("k1")
        finally:
            beat.cancel()

    def test_ttl_floor_and_env_default(self, tmp_path, monkeypatch):
        assert ClaimBoard(tmp_path, ttl=0.0).ttl == 0.05
        monkeypatch.setenv("REPRO_CLAIM_TTL", "7.5")
        assert ClaimBoard(tmp_path).ttl == 7.5
        monkeypatch.setenv("REPRO_CLAIM_TTL", "junk")
        assert ClaimBoard(tmp_path).ttl == 30.0


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
class TestPlans:
    def test_suite_plan_mirrors_pipeline_dag(self, tmp_path):
        cfg = SuiteRunConfig(names=("s9234", "s13207"), scale=0.25,
                             with_schedules=False)
        plan = suite_plan(cfg, store=StageCache(tmp_path))
        assert len(plan.units) == 2 * len(STAGES)
        keys = {u.key for u in plan.units}
        assert len(keys) == len(plan.units)  # content keys are unique
        by_circuit = {}
        for u in plan.units:
            by_circuit.setdefault(u.circuit, {})[u.stage] = u
        for name, stages in by_circuit.items():
            assert set(stages) == set(STAGES), name
            # Dep keys point at in-plan upstream units.
            sim = stages["simulation"]
            assert {d for d, _ in sim.deps} == {"sta", "faults", "atpg"}
            for dep_name, dep_key in sim.deps:
                assert stages[dep_name].key == dep_key

    def test_lpt_orders_costliest_circuit_first(self):
        units = [WorkUnit("cheap", "sta", "k1", (), cost=1.0),
                 WorkUnit("pricy", "sta", "k2", (), cost=5.0),
                 WorkUnit("cheap", "faults", "k3", (("sta", "k1"),),
                          cost=1.0)]
        ordered = ShardPlan.order_units(units)
        assert [u.circuit for u in ordered] == ["pricy", "cheap", "cheap"]
        # Topological (insertion) order within a circuit is preserved.
        assert [u.stage for u in ordered[1:]] == ["sta", "faults"]

    def test_timed_plan_validates_arguments(self):
        specs = [TimedStage("c0", "sta", 0.01)]
        with pytest.raises(ValueError, match="granularity"):
            timed_plan(specs, nonce="x", granularity="nope")
        with pytest.raises(ValueError, match="order"):
            timed_plan(specs, nonce="x", order="nope")

    def test_timed_plan_circuit_granularity_sums_costs(self):
        specs = [TimedStage("c0", s, 0.01) for s in STAGES]
        plan = timed_plan(specs, nonce="x", granularity="circuit",
                          order="given")
        assert len(plan.units) == 1
        assert plan.units[0].cost == pytest.approx(0.06)
        assert plan.units[0].deps == ()

    def test_suite_timed_specs_deterministic_and_normalized(self):
        a = suite_timed_specs(10, serial_s=2.0)
        b = suite_timed_specs(10, serial_s=2.0)
        assert a == b
        assert len(a) == 10 * len(STAGES)
        assert sum(s.cost for s in a) == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Drain loop (in-process)
# ----------------------------------------------------------------------
class TestDrain:
    def _tiny_specs(self, n=3):
        return [TimedStage(f"c{i}", s, 0.001)
                for i in range(n) for s in STAGES]

    def test_drain_completes_and_resumes(self, tmp_path):
        store = StageCache(tmp_path)
        plan = timed_plan(self._tiny_specs(), nonce="resume")
        stats = run_plan(plan, workers=1, store=store)
        assert stats.computed == len(plan.units)
        assert all(store.contains(u.key) for u in plan.units)
        again = run_plan(timed_plan(self._tiny_specs(), nonce="resume"),
                         workers=1, store=store)
        assert again.computed == 0
        assert again.hits == len(plan.units)

    def test_partial_resume_recomputes_only_missing_unit(self, tmp_path):
        store = StageCache(tmp_path)
        plan = timed_plan(self._tiny_specs(), nonce="partial")
        run_plan(plan, workers=1, store=store)
        store.delete(plan.units[4].key)
        stats = run_plan(timed_plan(self._tiny_specs(), nonce="partial"),
                         workers=1, store=store)
        assert stats.computed == 1
        assert stats.hits == len(plan.units) - 1

    def test_drain_reclaims_stale_claim(self, tmp_path):
        store = StageCache(tmp_path)
        plan = timed_plan(self._tiny_specs(1), nonce="stale")
        board = ClaimBoard.for_store(store, ttl=0.1, worker="live")
        dead = ClaimBoard.for_store(store, ttl=0.1, worker="dead")
        first_ready = plan.units[0]
        assert dead.try_claim(first_ready.key)  # orphaned claim
        _backdate(dead._path(first_ready.key), seconds=10.0)
        stats = drain_units(plan, store, board, poll=0.01)
        assert stats.reclaimed == 1
        assert stats.computed == len(plan.units)

    def test_drain_waits_out_fresh_foreign_claim(self, tmp_path):
        # A unit freshly claimed elsewhere is not stolen; the worker
        # polls until the TTL expires, then reclaims and finishes.
        store = StageCache(tmp_path)
        plan = timed_plan(self._tiny_specs(1), nonce="wait")
        board = ClaimBoard.for_store(store, ttl=0.2, worker="live")
        foreign = ClaimBoard.for_store(store, ttl=0.2, worker="gone")
        assert foreign.try_claim(plan.units[0].key)
        t0 = time.perf_counter()
        stats = drain_units(plan, store, board, poll=0.01)
        assert time.perf_counter() - t0 >= 0.2
        assert stats.reclaimed == 1
        assert stats.computed == len(plan.units)
        assert stats.wait_s > 0


# ----------------------------------------------------------------------
# Heartbeat thread lifecycle
# ----------------------------------------------------------------------
def _live_heartbeat_threads() -> list[str]:
    import threading

    from repro.experiments.shard import _Heartbeat

    return [t.name for t in threading.enumerate()
            if t.name.startswith(_Heartbeat.THREAD_PREFIX)]


class TestHeartbeatLifecycle:
    def test_drain_leaves_no_heartbeat_threads(self, tmp_path):
        # Regression: heartbeats used to run as fire-and-forget daemon
        # threads that outlived their unit; a long-lived process (the
        # service orchestrator) would accumulate one per drained unit.
        store = StageCache(tmp_path)
        plan = timed_plan([TimedStage(f"c{i}", s, 0.001)
                           for i in range(3) for s in STAGES],
                          nonce="hb-drain")
        board = ClaimBoard.for_store(store, ttl=0.2, worker="hb")
        stats = drain_units(plan, store, board, poll=0.01)
        assert stats.computed == len(plan.units)
        assert _live_heartbeat_threads() == []

    def test_cancel_stops_and_joins(self, tmp_path):
        board = ClaimBoard(tmp_path / "claims", ttl=0.2, worker="a")
        board.try_claim("k1")
        beat = board.heartbeat("k1")
        assert beat.alive
        assert _live_heartbeat_threads()
        beat.cancel()
        beat.cancel()  # idempotent
        assert not beat.alive
        assert _live_heartbeat_threads() == []

    def test_context_manager_cancels_on_error(self, tmp_path):
        board = ClaimBoard(tmp_path / "claims", ttl=0.2, worker="a")
        board.try_claim("k1")
        with pytest.raises(RuntimeError):
            with board.heartbeat("k1") as beat:
                assert beat.alive
                raise RuntimeError("unit failed")
        assert not beat.alive

    def test_released_claim_retires_the_thread(self, tmp_path):
        # A heartbeat whose claim vanished (released, or stolen after a
        # stall) must terminate on its own instead of spinning forever.
        board = ClaimBoard(tmp_path / "claims", ttl=0.2, worker="a")
        board.try_claim("k1")
        beat = board.heartbeat("k1")
        board.release("k1")
        deadline = time.time() + 2.0
        while beat.alive and time.time() < deadline:
            time.sleep(0.02)
        assert not beat.alive


# ----------------------------------------------------------------------
# Fork driver: crash recovery
# ----------------------------------------------------------------------
@pytest.mark.skipif("fork" not in __import__("multiprocessing")
                    .get_all_start_methods(),
                    reason="requires the fork start method")
class TestCrashRecovery:
    def test_killed_worker_unit_is_reclaimed_once(self, tmp_path):
        store = StageCache(tmp_path / "store")
        flag = tmp_path / "killed-once"
        base = timed_plan([TimedStage(f"c{i}", s, 0.01)
                           for i in range(4) for s in STAGES],
                          nonce="crash")
        victim = base.units[5].key

        def execute(unit, _timer):
            if unit.key == victim and not flag.exists():
                flag.write_text("x")
                os._exit(42)  # simulate a hard-killed worker mid-stage
            time.sleep(unit.cost)
            return {"circuit": unit.circuit, "stage": unit.stage}

        plan = ShardPlan(base.units, execute)
        stats = run_plan(plan, workers=2, store=store, ttl=0.3)
        assert flag.exists()  # one worker really died
        assert stats.worker_failures == 1
        # The orphaned claim was reclaimed exactly once and the suite
        # still completed.
        assert stats.reclaimed == 1
        assert all(store.contains(u.key) for u in plan.units)
        # The dead worker's stats are lost with it; the survivor accounts
        # for every unit either by computing it or by observing the dead
        # worker's stored artifacts as hits.
        assert stats.computed + stats.hits == len(plan.units)

    def test_all_workers_dead_raises_with_resume_hint(self, tmp_path):
        store = StageCache(tmp_path / "store")
        base = timed_plan([TimedStage("c0", s, 0.01) for s in STAGES],
                          nonce="fatal")

        def execute(unit, _timer):
            raise RuntimeError("stage exploded")

        plan = ShardPlan(base.units, execute)
        with pytest.raises(RuntimeError, match="resume"):
            run_plan(plan, workers=2, store=store, ttl=0.2)


# ----------------------------------------------------------------------
# End-to-end sharded suite runs
# ----------------------------------------------------------------------
def _deep_signature(res):
    """Bit-level digest of everything a FlowResult derives from stages."""
    cls_ = res.classification
    return (
        [(p.launch, p.capture) for p in res.test_set],
        res.clock.t_nom,
        res.universe_size,
        res.data.faults_with_ranges(),
        sorted(cls_.target),
        sorted(cls_.at_speed),
        sorted(cls_.monitor_at_speed),
        sorted(cls_.timing_redundant),
        sorted(cls_.conv_detected),
        sorted(cls_.prop_detected),
        {k: (sorted(s.periods),
             [(e.period, e.pattern, e.config) for e in s.entries],
             sorted(s.covered))
         for k, s in res.schedules.items()},
    )


class TestRunSuiteSharded:
    @pytest.fixture()
    def cfg(self):
        return SuiteRunConfig(names=("s9234", "s13207"), scale=0.25,
                              with_schedules=True)

    def test_requires_the_stage_store(self, cfg, monkeypatch):
        monkeypatch.setenv("REPRO_FLOW_CACHE", "0")
        with pytest.raises(RuntimeError, match="stage store"):
            run_suite_sharded(cfg, workers=1)

    def test_matches_serial_flows_bit_identically(self, cfg, tmp_path,
                                                  monkeypatch):
        report = run_suite_sharded(cfg, workers=1,
                                   store=StageCache(tmp_path / "a"))
        # Serial reference: plain in-process flows, no cache at all.
        monkeypatch.setenv("REPRO_FLOW_CACHE", "0")
        clear_cache()
        serial = run_suite(cfg)
        clear_cache()
        assert list(report.results) == list(serial)
        for name in serial:
            assert (_deep_signature(report.results[name])
                    == _deep_signature(serial[name])), name

    def test_two_workers_match_one_worker(self, cfg, tmp_path):
        one = run_suite_sharded(cfg, workers=1,
                                store=StageCache(tmp_path / "one"))
        two = run_suite_sharded(cfg, workers=2,
                                store=StageCache(tmp_path / "two"))
        for name in cfg.names:
            assert (_deep_signature(one.results[name])
                    == _deep_signature(two.results[name])), name
        assert two.stats.worker_failures == 0

    def test_rerun_resumes_entirely_from_store(self, cfg, tmp_path):
        store = StageCache(tmp_path)
        first = run_suite_sharded(cfg, workers=1, store=store)
        assert first.stats.computed == len(cfg.names) * len(STAGES)
        second = run_suite_sharded(cfg, workers=1, store=store)
        assert second.stats.computed == 0
        for name in cfg.names:
            assert (_deep_signature(first.results[name])
                    == _deep_signature(second.results[name])), name

    def test_partial_suite_resumes_missing_stages_only(self, cfg, tmp_path):
        store = StageCache(tmp_path)
        run_suite_sharded(cfg, workers=1, store=store)
        plan = suite_plan(cfg, store=store)
        dropped = [u for u in plan.units
                   if u.circuit == "s9234" and u.stage == "schedule"]
        assert len(dropped) == 1
        store.delete(dropped[0].key)
        resumed = run_suite_sharded(cfg, workers=1, store=store)
        assert resumed.stats.computed == 1

    def test_pattern_budget_matches_run_suite(self, cfg, tmp_path):
        # The shard planner derives the same pattern cap as run_suite, so
        # stage keys (and artifacts) are shared between both entry points.
        store = StageCache(tmp_path)
        run_suite_sharded(cfg, workers=1, store=store)
        name = cfg.names[0]
        cap = suite_entry(name).pattern_budget(scale=cfg.scale)
        probe = suite_flow(name, cfg, cap, 1).cached_result(
            with_schedules=cfg.with_schedules,
            with_coverage_schedules=cfg.with_coverage_schedules,
            cache=store)
        assert probe is not None
