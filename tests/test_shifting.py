"""Tests for detection-range shifting math (Sec. III-B)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.monitors.monitor import MonitorConfigSet
from repro.monitors.shifting import (
    detecting_configs,
    observable_range,
    range_for_config,
    recoverable_below_window,
    shifted_union,
)
from repro.utils.intervals import IntervalSet


T_NOM = 300.0
T_MIN = 100.0
CONFIGS = MonitorConfigSet.paper_default(T_NOM)


def iset(*pairs):
    return IntervalSet.from_pairs(pairs)


class TestShiftedUnion:
    def test_single_config(self):
        out = shifted_union(iset((50, 70)), [100.0])
        assert out == iset((150, 170))

    def test_multiple_configs_union(self):
        out = shifted_union(iset((50, 70)), [10.0, 100.0])
        assert out == iset((60, 80), (150, 170))

    def test_empty_configs(self):
        assert shifted_union(iset((50, 70)), []).is_empty


class TestObservableRange:
    def test_recovers_subwindow_effects(self):
        """The paper's headline mechanism: effects in (0, t_nom/3) shifted
        into the window by d = t_nom/3."""
        i_mon = iset((50, 70))  # far below t_min = 100
        i_all = i_mon  # same observation point only
        no_mon = observable_range(i_all, IntervalSet.empty(), CONFIGS,
                                  T_MIN, T_NOM)
        assert no_mon.is_empty
        with_mon = observable_range(i_all, i_mon, CONFIGS, T_MIN, T_NOM)
        assert not with_mon.is_empty
        # d = 45 lands partially in the window ([95,115] → [100,115]) and
        # d = 100 fully recovers the effect as [150, 170].
        assert with_mon == iset((100, 115), (150, 170))

    def test_ff_range_always_included(self):
        i_all = iset((150, 200))
        out = observable_range(i_all, IntervalSet.empty(), CONFIGS,
                               T_MIN, T_NOM)
        assert out == i_all

    def test_clipping(self):
        i_all = iset((50, 400))
        out = observable_range(i_all, IntervalSet.empty(), (), T_MIN, T_NOM)
        assert out == iset((T_MIN, T_NOM))

    def test_range_for_single_config(self):
        i_mon = iset((80, 95))
        out = range_for_config(IntervalSet.empty(), i_mon, 15.0, T_MIN, T_NOM)
        assert out == iset((100, 110))


class TestDetectingConfigs:
    def test_selects_matching_delays(self):
        i_mon = iset((80, 95))
        # period 120: need shift d with 120 in [80+d, 95+d] → d in [25, 40].
        hits = detecting_configs(i_mon, CONFIGS, 120.0, t_min=T_MIN, t_nom=T_NOM)
        assert hits == [1]  # 0.1 * 300 = 30

    def test_period_outside_window_empty(self):
        i_mon = iset((80, 95))
        assert detecting_configs(i_mon, CONFIGS, 50.0,
                                 t_min=T_MIN, t_nom=T_NOM) == []


class TestRecoverable:
    def test_full_recovery_with_third_delay(self):
        # Everything in (0, t_min) is recoverable with d = t_nom/3 when the
        # shifted copy lands inside the window.
        hidden = iset((20, 90))
        rec = recoverable_below_window(hidden, CONFIGS, T_MIN, T_NOM)
        assert rec.measure == pytest.approx(hidden.measure)

    def test_nothing_to_recover(self):
        inside = iset((150, 200))
        rec = recoverable_below_window(inside, CONFIGS, T_MIN, T_NOM)
        assert rec.is_empty


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
pairs = st.tuples(st.floats(0, 280, allow_nan=False),
                  st.floats(0, 280, allow_nan=False))


@st.composite
def ranges(draw):
    ps = draw(st.lists(pairs, max_size=5))
    return IntervalSet.from_pairs((min(a, b), max(a, b)) for a, b in ps)


@given(ranges(), ranges())
def test_observable_range_monotone_in_ff_range(extra, mon):
    base = observable_range(IntervalSet.empty(), mon, CONFIGS, T_MIN, T_NOM)
    more = observable_range(extra, mon, CONFIGS, T_MIN, T_NOM)
    assert (base - more).measure == pytest.approx(0.0, abs=1e-6)


@given(ranges())
def test_more_configs_never_shrink(mon):
    few = observable_range(IntervalSet.empty(), mon, CONFIGS.delays[:1],
                           T_MIN, T_NOM)
    many = observable_range(IntervalSet.empty(), mon, CONFIGS.delays,
                            T_MIN, T_NOM)
    assert (few - many).measure == pytest.approx(0.0, abs=1e-6)


@given(ranges())
def test_result_always_within_window(mon):
    out = observable_range(mon, mon, CONFIGS, T_MIN, T_NOM)
    for iv in out:
        assert iv.lo >= T_MIN - 1e-9
        assert iv.hi <= T_NOM + 1e-9
