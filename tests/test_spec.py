"""JobSpec layer: round-trip, canonical fingerprints, validation.

The fingerprint matrix mirrors ``tests/test_pipeline_cache.py``: every
*semantic* field flip must change the fingerprint (two submissions with
different results must never dedupe onto each other), while execution
knobs (workers, sharding, process counts) must leave it unchanged.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.spec import (
    DEFAULT_CHECKPOINTS,
    FleetJob,
    FlowJob,
    JOB_TYPES,
    ReschedJob,
    ScenarioSpec,
    SpecError,
    SuiteJob,
    job_from_dict,
    job_from_json,
    load_job,
)


def example_jobs() -> dict[str, object]:
    return {
        "flow": FlowJob(circuit="s27", fast_ratio=2.5, pattern_cap=9,
                        engines=(("atpg", "reference"),)),
        "suite": SuiteJob(names=("s27", "c17"), scale=0.6, workers=2,
                          sharded=True),
        "fleet": FleetJob(circuit="s27", devices=64, engine="reference",
                          jobs=2, scenario=ScenarioSpec(seed=3)),
        "resched": ReschedJob(circuit="s27", engine="cold",
                              alerts=(((13, 2.0),), ((13, 0.5), (16, 1.0))),
                              max_gates=2),
    }


JOB_IDS = sorted(example_jobs())


@pytest.fixture(params=JOB_IDS)
def job(request):
    return example_jobs()[request.param]


class TestRoundTrip:
    def test_json_spec_json_identity(self, job):
        reparsed = job_from_json(job.to_json())
        assert reparsed == job
        assert reparsed.to_json() == job.to_json()

    def test_dict_round_trip_preserves_kind(self, job):
        document = json.loads(job.to_json())
        assert document["kind"] == job.kind
        assert type(job_from_dict(document)) is JOB_TYPES[job.kind]

    def test_defaults_round_trip(self):
        for cls in (FlowJob, FleetJob, ReschedJob):
            spec = cls(circuit="s27")
            assert job_from_json(spec.to_json()) == spec
        suite = SuiteJob(names=("s27",))
        assert job_from_json(suite.to_json()) == suite

    def test_save_load_file(self, job, tmp_path):
        path = tmp_path / "job.json"
        job.save(path)
        assert load_job(path) == job

    def test_scenario_nests_as_plain_document(self):
        spec = FleetJob(circuit="s27", scenario=ScenarioSpec(seed=5))
        document = json.loads(spec.to_json())
        assert document["scenario"]["seed"] == 5
        assert job_from_dict(document).scenario == spec.scenario


class TestFingerprint:
    def test_stable_across_key_reordering(self, job):
        document = job.to_dict()
        shuffled = dict(reversed(list(document.items())))
        assert job_from_dict(shuffled).fingerprint() == job.fingerprint()

    def test_stable_across_json_round_trip(self, job):
        assert job_from_json(job.to_json()).fingerprint() == \
            job.fingerprint()

    def test_distinct_across_kinds(self):
        jobs = example_jobs()
        prints = {jobs[k].fingerprint() for k in JOB_IDS}
        assert len(prints) == len(JOB_IDS)

    #: (kind, semantic field override) — every flip must change the
    #: fingerprint, mirroring the stage-cache invalidation matrix.
    SEMANTIC = [
        ("flow", {"circuit": "c17"}),
        ("flow", {"fast_ratio": 2.0}),
        ("flow", {"monitor_fraction": 0.5}),
        ("flow", {"pattern_cap": 4}),
        ("flow", {"atpg_seed": 11}),
        ("flow", {"engines": ()}),
        ("flow", {"with_schedules": False}),
        ("flow", {"with_coverage_schedules": True}),
        ("suite", {"names": ("s27",)}),
        ("suite", {"scale": 1.0}),
        ("suite", {"with_schedules": False}),
        ("suite", {"fast_ratio": 2.0}),
        ("suite", {"monitor_fraction": 0.5}),
        ("suite", {"atpg_seed": 11}),
        ("fleet", {"circuit": "c17"}),
        ("fleet", {"devices": 128}),
        ("fleet", {"engine": "vectorized"}),
        ("fleet", {"scenario": ScenarioSpec(seed=4)}),
        ("resched", {"circuit": "c17"}),
        ("resched", {"engine": "incremental"}),
        ("resched", {"alerts": (((13, 2.0),),)}),
        ("resched", {"scenario": ScenarioSpec()}),
        ("resched", {"max_gates": 1}),
        ("resched", {"atpg_seed": 3}),
    ]

    @pytest.mark.parametrize(
        "kind,override", SEMANTIC,
        ids=[f"{k}:{next(iter(o))}" for k, o in SEMANTIC])
    def test_semantic_field_changes_fingerprint(self, kind, override):
        base = example_jobs()[kind]
        assert replace(base, **override).fingerprint() != \
            base.fingerprint()

    #: Execution knobs: results are bit-identical, fingerprints equal.
    NON_SEMANTIC = [
        ("suite", {"workers": 8}),
        ("suite", {"sharded": False}),
        ("fleet", {"jobs": 16}),
    ]

    @pytest.mark.parametrize(
        "kind,override", NON_SEMANTIC,
        ids=[f"{k}:{next(iter(o))}" for k, o in NON_SEMANTIC])
    def test_execution_knob_keeps_fingerprint(self, kind, override):
        base = example_jobs()[kind]
        assert replace(base, **override).fingerprint() == \
            base.fingerprint()

    def test_alert_pair_order_is_canonicalized(self):
        a = ReschedJob(circuit="s27", alerts=(((16, 1.0), (13, 0.5)),))
        b = ReschedJob(circuit="s27", alerts=(((13, 0.5), (16, 1.0)),))
        assert a.alerts == b.alerts
        assert a.fingerprint() == b.fingerprint()


class TestValidation:
    def test_unknown_field_lists_known(self):
        with pytest.raises(SpecError, match=r"unknown flow job field\(s\): "
                                            r"frobnicate"):
            job_from_dict({"kind": "flow", "circuit": "s27",
                           "frobnicate": 1})

    def test_missing_kind_lists_kinds(self):
        with pytest.raises(SpecError,
                           match="fleet, flow, resched, suite"):
            job_from_dict({"circuit": "s27"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown job kind 'warp'"):
            job_from_dict({"kind": "warp"})

    def test_wrong_kind_for_class(self):
        with pytest.raises(SpecError, match="expected a 'flow' job"):
            FlowJob.from_dict({"kind": "fleet", "circuit": "s27"})

    def test_non_object_document(self):
        with pytest.raises(SpecError, match="JSON object"):
            job_from_dict([1, 2, 3])

    def test_invalid_json_text(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            job_from_json("{nope")

    def test_empty_circuit_rejected(self):
        with pytest.raises(SpecError, match="non-empty 'circuit'"):
            FlowJob(circuit="")

    def test_bad_engine_lists_registered(self):
        with pytest.raises(SpecError, match="registered: cold, incremental"):
            ReschedJob(circuit="s27", engine="quantum")
        with pytest.raises(SpecError,
                           match="registered: reference, vectorized"):
            FleetJob(circuit="s27", engine="quantum")
        with pytest.raises(SpecError, match="registered: matrix, reference"):
            FlowJob(circuit="s27", engines=(("atpg", "quantum"),))

    def test_malformed_alerts_rejected(self):
        with pytest.raises(SpecError, match=r"alert #0"):
            ReschedJob(circuit="s27", alerts=("nope",))

    def test_unknown_profile_lists_known(self):
        with pytest.raises(SpecError, match="known: quick, paper, synth"):
            SuiteJob.from_profile("huge")

    def test_type_error_becomes_spec_error(self):
        with pytest.raises(SpecError, match="invalid flow job"):
            job_from_dict({"kind": "flow", "circuit": "s27",
                           "fast_ratio": "fast"})


class TestProfilesAndConfigs:
    def test_quick_profile_matches_run_config(self):
        from repro.experiments.runner import SuiteRunConfig

        job = SuiteJob.from_profile("quick")
        assert job.run_config() == SuiteRunConfig.quick()

    def test_synth_profile_skips_schedules(self):
        job = SuiteJob.from_profile("synth", count=3)
        assert len(job.names) == 3
        assert not job.with_schedules

    def test_profile_overrides_drop_none(self):
        job = SuiteJob.from_profile("quick", scale=None, workers=4)
        assert job.scale == 0.6
        assert job.workers == 4

    def test_flow_job_config_keeps_job_knobs_out(self):
        job = FlowJob(circuit="s27", fast_ratio=2.5)
        cfg = job.flow_config(simulation_jobs=4)
        assert cfg.fast_ratio == 2.5
        assert cfg.simulation_jobs == 4
        assert "simulation_jobs" not in job.to_dict()

    def test_default_checkpoints_are_geometric(self):
        ratios = {round(b / a, 6) for a, b in zip(DEFAULT_CHECKPOINTS,
                                                  DEFAULT_CHECKPOINTS[1:])}
        assert len(ratios) == 1
