"""Tests for static timing analysis."""

from __future__ import annotations

import random

import pytest

from repro.netlist.circuit import Circuit, GateKind
from repro.simulation.wave_sim import WaveformSimulator
from repro.timing.sta import CLOCK_MARGIN, run_sta


def diamond() -> Circuit:
    """Two paths of different length reconverging."""
    c = Circuit("diamond")
    a = c.add_input("a")
    long1 = c.add_gate("l1", GateKind.NOT, [a])
    long2 = c.add_gate("l2", GateKind.NOT, [long1])
    short = c.add_gate("s1", GateKind.BUF, [a])
    top = c.add_gate("top", GateKind.AND, [long2, short])
    c.mark_output(top)
    return c.finalize()


class TestArrivals:
    def test_requires_finalized(self):
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(ValueError):
            run_sta(c)

    def test_chain_arrival_is_sum(self):
        c = Circuit("chain")
        prev = c.add_input("a")
        expected = 0.0
        gates = []
        for i in range(4):
            prev = c.add_gate(f"g{i}", GateKind.NOT, [prev])
            gates.append(prev)
        c.mark_output(prev)
        c.finalize()
        sta = run_sta(c)
        for g in gates:
            gate = c.gates[g]
            expected += max(gate.pin_delays[0])
            assert sta.arrival_max[g] == pytest.approx(expected)

    def test_diamond_min_max_differ(self):
        c = diamond()
        sta = run_sta(c)
        top = c.index_of("top")
        assert sta.arrival_min[top] < sta.arrival_max[top]

    def test_clock_period_margin(self, s27):
        sta = run_sta(s27)
        assert sta.clock_period == pytest.approx(
            CLOCK_MARGIN * sta.critical_path)

    def test_explicit_clock_period(self, s27):
        sta = run_sta(s27, clock_period=1000.0)
        assert sta.clock_period == 1000.0

    def test_critical_path_over_observed_gates(self, s27):
        sta = run_sta(s27)
        observed = {op.gate for op in s27.observation_points()}
        assert sta.critical_path == pytest.approx(
            max(sta.arrival_max[g] for g in observed))


class TestSlack:
    def test_slack_nonnegative_at_margin_clock(self, small_generated):
        sta = run_sta(small_generated)
        for g in small_generated.combinational_gates():
            assert sta.min_slack(g) >= -1e-9

    def test_short_path_has_more_slack(self):
        c = diamond()
        sta = run_sta(c)
        assert sta.max_slack(c.index_of("s1")) > sta.min_slack(c.index_of("l1"))

    def test_slack_decreases_with_depth_on_chain(self):
        c = Circuit("chain")
        prev = c.add_input("a")
        gates = []
        for i in range(5):
            prev = c.add_gate(f"g{i}", GateKind.NOT, [prev])
            gates.append(prev)
        c.mark_output(prev)
        c.finalize()
        sta = run_sta(c)
        # Single path: every gate shares the same (critical) path slack.
        slacks = {round(sta.min_slack(g), 6) for g in gates}
        assert len(slacks) == 1


class TestAgainstSimulation:
    def test_arrival_max_bounds_observed_transitions(self, small_generated):
        """No simulated transition may occur after the STA worst arrival."""
        sta = run_sta(small_generated)
        sim = WaveformSimulator(small_generated, inertial=0.0)
        rng = random.Random(5)
        srcs = small_generated.sources()
        for _ in range(10):
            v1 = [rng.randint(0, 1) for _ in srcs]
            v2 = [rng.randint(0, 1) for _ in srcs]
            res = sim.simulate(v1, v2)
            for g in small_generated.combinational_gates():
                last = res.waveforms[g].last_event_time
                assert last <= sta.arrival_max[g] + 1e-6

    def test_critical_path_reachable_bound(self, s27):
        sta = run_sta(s27)
        observed = {op.gate for op in s27.observation_points()}
        # Structural bound at least as large as any simulated settle time.
        sim = WaveformSimulator(s27, inertial=0.0)
        rng = random.Random(6)
        srcs = s27.sources()
        worst = 0.0
        for _ in range(50):
            v1 = [rng.randint(0, 1) for _ in srcs]
            v2 = [rng.randint(0, 1) for _ in srcs]
            res = sim.simulate(v1, v2)
            worst = max(worst, max(res.waveforms[g].last_event_time
                                   for g in observed))
        assert worst <= sta.critical_path + 1e-6
