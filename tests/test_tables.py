"""Tests for the Table I/II/III experiment drivers on the quick suite.

These are integration tests over the cached suite runner: one expensive
run shared by all assertions.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import SuiteRunConfig, run_suite
from repro.experiments.table1 import table1_rows
from repro.experiments.table2 import table2_rows
from repro.experiments.table3 import table3_rows
from repro.experiments.reporting import compare_table1, compare_table2, format_table


@pytest.fixture(scope="module")
def quick_config():
    return SuiteRunConfig.quick(with_schedules=True,
                                with_coverage_schedules=True)


@pytest.fixture(scope="module")
def quick_results(quick_config):
    return run_suite(quick_config)


class TestRunner:
    def test_all_circuits_present(self, quick_results, quick_config):
        assert tuple(quick_results) == quick_config.names

    def test_cache_returns_same_objects(self, quick_config, quick_results):
        again = run_suite(quick_config)
        for name in quick_config.names:
            assert again[name] is quick_results[name]


class TestTable1(object):
    def test_rows_shape(self, quick_config):
        rows = table1_rows(quick_config)
        assert len(rows) == len(quick_config.names)
        for row in rows:
            assert row["prop"] >= row["conv"]
            assert row["targets"] <= row["prop"]
            assert row["monitors"] >= 1

    def test_gain_nonnegative(self, quick_config):
        for row in table1_rows(quick_config):
            assert row["gain_percent"] >= 0.0

    def test_compare_helper(self, quick_config):
        cmp_rows = compare_table1(table1_rows(quick_config))
        assert cmp_rows
        for row in cmp_rows:
            assert "paper_gain_percent" in row


class TestTable2:
    def test_rows_shape(self, quick_config):
        rows = table2_rows(quick_config)
        for row in rows:
            assert row["freq_prop"] >= 1
            assert row["pc_opti"] <= row["pc_orig"]
            assert 0.0 <= row["pc_reduction_percent"] < 100.0

    def test_ilp_beats_or_matches_heuristic(self, quick_config):
        for row in table2_rows(quick_config):
            assert row["freq_prop"] <= row["freq_heur"]

    def test_reduction_in_paper_band(self, quick_config):
        """The paper reports 73-98 % schedule-size reductions; the
        reproduction should land in the same regime (>50 %)."""
        for row in table2_rows(quick_config):
            assert row["pc_reduction_percent"] > 50.0

    def test_schedules_required(self):
        with pytest.raises(ValueError):
            table2_rows(SuiteRunConfig.quick(with_schedules=False))

    def test_compare_helper(self, quick_config):
        for row in compare_table2(table2_rows(quick_config)):
            assert row["ilp_beats_heuristic"]


class TestTable3:
    def test_rows_monotone_in_coverage(self, quick_config):
        for row in table3_rows(quick_config):
            assert row["F_90"] <= row["F_95"] <= row["F_98"] <= row["F_99"]
            # |S| is only approximately monotone (see Table III benchmark).
            assert row["S_90"] <= row["S_99"] + 2
            assert row["PC_90"] <= row["PC_99"]

    def test_naive_size_formula(self, quick_config, quick_results):
        for row in table3_rows(quick_config):
            res = quick_results[row["circuit"]]
            n_p = len(res.test_set)
            n_c = len(res.configs)
            assert row["PC_99"] == n_p * (n_c + 1) * row["F_99"]

    def test_requires_coverage_schedules(self):
        with pytest.raises(ValueError):
            table3_rows(SuiteRunConfig.quick(with_schedules=True))


class TestFormatting:
    def test_format_table_alignment(self, quick_config):
        rows = table1_rows(quick_config)
        text = format_table(rows, title="Table I")
        lines = text.splitlines()
        assert lines[0] == "Table I"
        assert len(lines) == len(rows) + 3
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to equal width

    def test_format_empty(self):
        assert "(no rows)" in format_table([])
