"""Tests for netlist transformations (decomposition, fanout buffering)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.netlist.circuit import Circuit, GateKind
from repro.netlist.techmap import buffer_fanouts, decompose_wide_gates
from repro.netlist.validate import validate_circuit
from repro.simulation.parallel_sim import BitParallelSimulator


def output_vectors(circuit, vectors):
    """Name-keyed output responses (order-independent equivalence probe)."""
    sim = BitParallelSimulator(circuit)
    name_order = sorted(circuit.gates[i].name for i in circuit.sources())
    by_name = {circuit.gates[i].name: i for i in circuit.sources()}
    own_vectors = []
    for vec in vectors:
        assignment = dict(zip(name_order, vec))
        own_vectors.append(tuple(
            assignment[circuit.gates[i].name] for i in circuit.sources()))
    words, width = sim.pack_vectors(own_vectors)
    values = sim.simulate(words, width)
    return {circuit.gates[g].name: values[g] for g in circuit.outputs}


def assert_equivalent(a, b, *, n_vectors=64, seed=0):
    assert {a.gates[i].name for i in a.sources()} == \
        {b.gates[i].name for i in b.sources()}
    rng = random.Random(seed)
    width = len(a.sources())
    vectors = [tuple(rng.randint(0, 1) for _ in range(width))
               for _ in range(n_vectors)]
    assert output_vectors(a, vectors) == output_vectors(b, vectors)


class TestDecompose:
    @pytest.fixture()
    def wide(self):
        c = Circuit("wide")
        ins = [c.add_input(f"i{k}") for k in range(6)]
        n4 = c.add_gate("n4", GateKind.NAND, ins[:4])
        o3 = c.add_gate("o3", GateKind.NOR, ins[3:6])
        x3 = c.add_gate("x3", GateKind.XNOR, [n4, o3])
        a4 = c.add_gate("a4", GateKind.AND, [n4, o3, x3, ins[0]])
        c.mark_output(a4)
        return c.finalize()

    def test_arity_bounded(self, wide):
        out = decompose_wide_gates(wide, max_arity=2)
        for g in out.gates:
            if GateKind.is_combinational(g.kind):
                assert g.arity <= 2

    def test_functionally_equivalent(self, wide):
        assert_equivalent(wide, decompose_wide_gates(wide, max_arity=2))

    def test_equivalent_exhaustive(self, wide):
        out = decompose_wide_gates(wide, max_arity=2)
        vectors = list(itertools.product((0, 1), repeat=6))
        assert output_vectors(wide, vectors) == output_vectors(out, vectors)

    def test_sequential_structure_kept(self, s27):
        out = decompose_wide_gates(s27, max_arity=2)
        assert out.num_ffs == s27.num_ffs
        assert len(out.outputs) == len(s27.outputs)
        assert_equivalent(s27, out)

    def test_generated_circuit_equivalent(self, small_generated):
        out = decompose_wide_gates(small_generated, max_arity=2)
        assert_equivalent(small_generated, out)
        assert validate_circuit(out).ok

    def test_depth_grows(self, wide):
        out = decompose_wide_gates(wide, max_arity=2)
        assert out.depth >= wide.depth

    def test_max_arity_validated(self, wide):
        with pytest.raises(ValueError):
            decompose_wide_gates(wide, max_arity=1)

    def test_narrow_circuit_unchanged_in_size(self, c17):
        out = decompose_wide_gates(c17, max_arity=2)
        assert out.num_gates == c17.num_gates


class TestBufferFanouts:
    @pytest.fixture()
    def star(self):
        c = Circuit("star")
        a = c.add_input("a")
        b = c.add_input("b")
        hub = c.add_gate("hub", GateKind.AND, [a, b])
        sinks = [c.add_gate(f"s{k}", GateKind.NOT, [hub]) for k in range(10)]
        for s in sinks:
            c.mark_output(s)
        return c.finalize()

    def test_fanout_bounded(self, star):
        out = buffer_fanouts(star, max_fanout=3)
        for g in out.gates:
            if GateKind.is_combinational(g.kind):
                assert len(out.fanouts(g.index)) <= 3, g.name

    def test_functionally_equivalent(self, star):
        assert_equivalent(star, buffer_fanouts(star, max_fanout=3))

    def test_generated_circuit_equivalent(self, small_generated):
        out = buffer_fanouts(small_generated, max_fanout=3)
        assert_equivalent(small_generated, out)
        assert validate_circuit(out).ok

    def test_light_nets_untouched(self, c17):
        out = buffer_fanouts(c17, max_fanout=4)
        assert out.num_gates == c17.num_gates

    def test_max_fanout_validated(self, star):
        with pytest.raises(ValueError):
            buffer_fanouts(star, max_fanout=1)

    def test_deep_cascade(self):
        c = Circuit("mega")
        a = c.add_input("a")
        hub = c.add_gate("hub", GateKind.BUF, [a])
        for k in range(20):
            c.mark_output(c.add_gate(f"s{k}", GateKind.NOT, [hub]))
        c.finalize()
        out = buffer_fanouts(c, max_fanout=2)
        for g in out.gates:
            if GateKind.is_combinational(g.kind):
                assert len(out.fanouts(g.index)) <= 2
        assert_equivalent(c, out)


from hypothesis import given, settings, strategies as st


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 5), st.integers(2, 4))
def test_property_decompose_equivalent(seed, max_arity):
    from repro.circuits.generators import CircuitProfile, generate_circuit
    profile = CircuitProfile(name=f"d{seed}", n_gates=40, n_ffs=8,
                             n_inputs=6, n_outputs=3, depth=6, seed=seed)
    circuit = generate_circuit(profile)
    out = decompose_wide_gates(circuit, max_arity=max_arity)
    for g in out.gates:
        if GateKind.is_combinational(g.kind):
            assert g.arity <= max(max_arity, 1)
    assert_equivalent(circuit, out, n_vectors=32, seed=seed)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 5), st.integers(2, 5))
def test_property_buffering_equivalent(seed, max_fanout):
    from repro.circuits.generators import CircuitProfile, generate_circuit
    profile = CircuitProfile(name=f"b{seed}", n_gates=40, n_ffs=8,
                             n_inputs=6, n_outputs=3, depth=6, seed=seed)
    circuit = generate_circuit(profile)
    out = buffer_fanouts(circuit, max_fanout=max_fanout)
    for g in out.gates:
        if GateKind.is_combinational(g.kind):
            assert len(out.fanouts(g.index)) <= max_fanout
    assert_equivalent(circuit, out, n_vectors=32, seed=seed)


class TestFlowAfterTransforms:
    def test_flow_runs_on_transformed_circuit(self, s27):
        from repro.core import FlowConfig, HdfTestFlow
        out = buffer_fanouts(decompose_wide_gates(s27, max_arity=2),
                             max_fanout=3)
        result = HdfTestFlow(out, FlowConfig(pattern_cap=8)).run(
            with_schedules=False)
        assert result.universe_size > 0
