"""Tests for transition-fault test generation."""

from __future__ import annotations

import pytest

from repro.atpg.transition import (
    detect_masks,
    generate_transition_tests,
    transition_fault_list,
)
from repro.simulation.parallel_sim import BitParallelSimulator


class TestFaultList:
    def test_two_per_site(self, c17):
        faults = transition_fault_list(c17)
        sites = {f.site for f in faults}
        assert len(faults) == 2 * len(sites)


class TestGeneration:
    def test_full_coverage_c17(self, c17):
        res = generate_transition_tests(c17, seed=1)
        assert res.coverage == 1.0
        assert not res.aborted

    def test_high_coverage_s27(self, s27):
        res = generate_transition_tests(s27, seed=1)
        assert res.coverage >= 0.95

    def test_high_coverage_generated(self, small_generated):
        res = generate_transition_tests(small_generated, seed=1)
        assert res.coverage >= 0.9

    def test_deterministic(self, s27):
        a = generate_transition_tests(s27, seed=4)
        b = generate_transition_tests(s27, seed=4)
        assert a.test_set.patterns == b.test_set.patterns
        assert a.detected == b.detected

    def test_detected_faults_verified_by_simulation(self, s27):
        res = generate_transition_tests(s27, seed=2)
        sim = BitParallelSimulator(s27)
        masks = detect_masks(s27, sim, res.test_set, sorted(res.detected),
                             seed=2)
        undetected = [f for f, m in masks.items() if m == 0]
        assert not undetected

    def test_summary_fields(self, c17):
        res = generate_transition_tests(c17, seed=1)
        s = res.summary()
        assert s["patterns"] == len(res.test_set)
        assert s["coverage"] == pytest.approx(res.coverage, abs=1e-4)

    def test_restricted_fault_list(self, s27):
        subset = transition_fault_list(s27)[:10]
        res = generate_transition_tests(s27, seed=1, faults=subset)
        assert set(res.faults) == set(subset)

    def test_compaction_keeps_coverage(self, s27):
        full = generate_transition_tests(s27, seed=3, compact=False)
        compact = generate_transition_tests(s27, seed=3, compact=True)
        assert compact.detected == full.detected
        assert len(compact.test_set) <= len(full.test_set)

    def test_detect_masks_activation_needed(self, c17):
        """A pattern pair without a launch transition detects nothing."""
        from repro.atpg.patterns import PatternPair, TestSet
        width = len(c17.sources())
        same = TestSet(c17, [PatternPair((0,) * width, (0,) * width)])
        sim = BitParallelSimulator(c17)
        masks = detect_masks(c17, sim, same, transition_fault_list(c17))
        assert all(m == 0 for m in masks.values())
