"""Golden equivalence: matrix ATPG engine vs the retained seed reference.

The rebuilt word-matrix grading engine (``engine="matrix"``) must be a
pure performance change: bit-identical per-fault detect masks and an
identical compacted test set, fault ledger and coverage for every circuit
and seed.  These tests pin that contract (the benchmark in
``benchmarks/test_bench_atpg.py`` re-checks it at suite scale).
"""

from __future__ import annotations

import pytest

from repro.atpg.patterns import random_test_set
from repro.atpg.transition import (
    detect_masks,
    generate_transition_tests,
    transition_fault_list,
)
from repro.circuits.library import suite_circuit
from repro.simulation.parallel_sim import BitParallelSimulator


def _pairs(test_set):
    return [(p.launch, p.capture) for p in test_set]


def _assert_same_result(mat, ref):
    assert _pairs(mat.test_set) == _pairs(ref.test_set)
    assert mat.detected == ref.detected
    assert mat.untestable == ref.untestable
    assert mat.aborted == ref.aborted
    assert mat.coverage == ref.coverage


class TestDetectMasks:
    @pytest.mark.parametrize("count", [1, 5, 70])  # 70 → multi-word masks
    def test_bit_identical_masks_s27(self, s27, count):
        ts = random_test_set(s27, count, seed=3)
        sim = BitParallelSimulator(s27)
        faults = transition_fault_list(s27)
        mat = detect_masks(s27, sim, ts, faults, seed=3, engine="matrix")
        ref = detect_masks(s27, sim, ts, faults, seed=3, engine="reference")
        assert mat == ref
        assert any(mat.values())  # the workload is not vacuous

    def test_bit_identical_masks_generated(self, small_generated):
        ts = random_test_set(small_generated, 9, seed=11)
        sim = BitParallelSimulator(small_generated)
        faults = transition_fault_list(small_generated)
        mat = detect_masks(small_generated, sim, ts, faults, seed=11,
                           engine="matrix")
        ref = detect_masks(small_generated, sim, ts, faults, seed=11,
                           engine="reference")
        assert mat == ref

    def test_empty_test_set(self, s27):
        sim = BitParallelSimulator(s27)
        faults = transition_fault_list(s27)
        ts = random_test_set(s27, 1, seed=0).subset([])
        assert detect_masks(s27, sim, ts, faults, engine="matrix") == \
            {f: 0 for f in faults}

    def test_unknown_engine_rejected(self, s27):
        sim = BitParallelSimulator(s27)
        with pytest.raises(ValueError, match="unknown engine"):
            detect_masks(s27, sim, random_test_set(s27, 2, seed=0),
                         transition_fault_list(s27), engine="turbo")


class TestGenerateEquivalence:
    @pytest.mark.parametrize("fixture", ["c17", "s27", "small_generated"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_identical_atpg_outcome(self, fixture, seed, request):
        circuit = request.getfixturevalue(fixture)
        mat = generate_transition_tests(circuit, seed=seed, engine="matrix")
        ref = generate_transition_tests(circuit, seed=seed,
                                        engine="reference")
        _assert_same_result(mat, ref)

    def test_identical_without_compaction(self, s27):
        mat = generate_transition_tests(s27, seed=5, compact=False,
                                        engine="matrix")
        ref = generate_transition_tests(s27, seed=5, compact=False,
                                        engine="reference")
        _assert_same_result(mat, ref)

    def test_identical_on_scaled_suite_circuit(self):
        circuit = suite_circuit("s9234", scale=0.3)
        mat = generate_transition_tests(circuit, seed=7, engine="matrix")
        ref = generate_transition_tests(circuit, seed=7, engine="reference")
        _assert_same_result(mat, ref)

    def test_unknown_engine_rejected(self, s27):
        with pytest.raises(ValueError, match="unknown engine"):
            generate_transition_tests(s27, engine="bogus")
