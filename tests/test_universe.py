"""Tests for fault-universe generation."""

from __future__ import annotations

import pytest

from repro.faults.universe import fault_sites, small_delay_fault_universe
from repro.netlist.circuit import GateKind
from repro.timing.variation import fault_size_for_gate


class TestSites:
    def test_one_output_plus_inputs_per_gate(self, tiny_circuit):
        sites = fault_sites(tiny_circuit)
        expected = sum(1 + g.arity for g in tiny_circuit.gates
                       if GateKind.is_combinational(g.kind))
        assert len(sites) == expected

    def test_no_sites_on_sources(self, tiny_circuit):
        sites = fault_sites(tiny_circuit)
        for s in sites:
            assert GateKind.is_combinational(
                tiny_circuit.gates[s.gate].kind)


class TestUniverse:
    def test_two_polarities_per_site(self, tiny_circuit):
        faults = small_delay_fault_universe(tiny_circuit)
        assert len(faults) == 2 * len(fault_sites(tiny_circuit))
        by_site = {}
        for f in faults:
            by_site.setdefault(f.site, set()).add(f.slow_to_rise)
        assert all(v == {True, False} for v in by_site.values())

    def test_six_sigma_sizing(self, tiny_circuit):
        faults = small_delay_fault_universe(tiny_circuit)
        for f in faults:
            assert f.delta == pytest.approx(
                fault_size_for_gate(tiny_circuit, f.site.gate))

    def test_fixed_delta_override(self, tiny_circuit):
        faults = small_delay_fault_universe(tiny_circuit, delta=42.0)
        assert all(f.delta == 42.0 for f in faults)

    def test_sites_restriction(self, tiny_circuit):
        sites = fault_sites(tiny_circuit)[:3]
        faults = small_delay_fault_universe(tiny_circuit, sites=sites)
        assert len(faults) == 6
        assert {f.site for f in faults} == set(sites)

    def test_nonpositive_delta_skipped(self, tiny_circuit):
        faults = small_delay_fault_universe(tiny_circuit, delta=0.0)
        assert faults == []

    def test_paper_scale_sanity(self, small_generated):
        """Fault count ≈ (pins per gate + 1) * 2 * gates, as in Table I."""
        faults = small_delay_fault_universe(small_generated)
        gates = small_generated.num_gates
        assert 4 * gates <= len(faults) <= 10 * gates
