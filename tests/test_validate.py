"""Tests for netlist validation."""

from __future__ import annotations

import pytest

from repro.netlist.circuit import Circuit, GateKind
from repro.netlist.validate import validate_circuit


class TestValidate:
    def test_clean_circuit_ok(self, s27):
        report = validate_circuit(s27)
        assert report.ok
        report.raise_on_error()

    def test_generated_circuit_ok(self, small_generated):
        assert validate_circuit(small_generated).ok

    def test_not_finalized(self):
        c = Circuit("x")
        c.add_input("a")
        report = validate_circuit(c)
        assert not report.ok
        assert "not finalized" in report.errors[0]

    def test_no_observation_points(self):
        c = Circuit("x")
        a = c.add_input("a")
        c.add_gate("g", GateKind.NOT, [a])
        c.finalize()
        report = validate_circuit(c)
        assert any("no observation points" in e for e in report.errors)

    def test_dangling_gate_warned(self):
        c = Circuit("x")
        a = c.add_input("a")
        g = c.add_gate("g", GateKind.NOT, [a])
        c.add_gate("dangle", GateKind.BUF, [a])
        c.mark_output(g)
        c.finalize()
        report = validate_circuit(c)
        assert report.ok
        assert any("dangling" in w for w in report.warnings)

    def test_unreaching_input_warned(self):
        c = Circuit("x")
        a = c.add_input("a")
        c.add_input("unused")
        g = c.add_gate("g", GateKind.NOT, [a])
        c.mark_output(g)
        c.finalize()
        report = validate_circuit(c)
        assert any("reaches no output" in w for w in report.warnings)

    def test_missing_delays_error(self, tiny_circuit):
        tiny_circuit.gate_by_name("G1").pin_delays = ()
        report = validate_circuit(tiny_circuit)
        assert any("no delays" in e for e in report.errors)
        with pytest.raises(ValueError, match="invalid netlist"):
            report.raise_on_error()

    def test_nonpositive_delay_error(self, tiny_circuit):
        g = tiny_circuit.gate_by_name("G1")
        g.pin_delays = tuple((0.0, f) for _r, f in g.pin_delays)
        report = validate_circuit(tiny_circuit)
        assert any("non-positive" in e for e in report.errors)

    def test_delay_count_mismatch_error(self, tiny_circuit):
        g = tiny_circuit.gate_by_name("G1")
        g.pin_delays = g.pin_delays[:1]
        report = validate_circuit(tiny_circuit)
        assert any("delay entries" in e for e in report.errors)
