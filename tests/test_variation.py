"""Tests for process variation and fault sizing."""

from __future__ import annotations

import pytest

from repro.timing.variation import (
    apply_process_variation,
    fault_size_for_gate,
    nominal_gate_delay,
)


class TestFaultSizing:
    def test_nominal_gate_delay_is_pin_mean(self, tiny_circuit):
        g = tiny_circuit.gate_by_name("G1")
        expected = sum(r + f for r, f in g.pin_delays) / (2 * g.arity)
        assert nominal_gate_delay(tiny_circuit, g.index) == pytest.approx(expected)

    def test_source_has_zero_delay(self, tiny_circuit):
        a = tiny_circuit.index_of("A")
        assert nominal_gate_delay(tiny_circuit, a) == 0.0

    def test_six_sigma_default(self, tiny_circuit):
        g = tiny_circuit.index_of("G1")
        nominal = nominal_gate_delay(tiny_circuit, g)
        assert fault_size_for_gate(tiny_circuit, g) == pytest.approx(
            6 * 0.2 * nominal)

    def test_custom_sigma(self, tiny_circuit):
        g = tiny_circuit.index_of("G1")
        assert fault_size_for_gate(
            tiny_circuit, g, sigma_fraction=0.1, n_sigma=3) == pytest.approx(
            0.3 * nominal_gate_delay(tiny_circuit, g))


class TestProcessVariation:
    def test_deterministic(self, tiny_circuit, s27):
        import copy
        a = copy.deepcopy(s27)
        b = copy.deepcopy(s27)
        apply_process_variation(a, seed=42)
        apply_process_variation(b, seed=42)
        for ga, gb in zip(a.gates, b.gates):
            assert ga.pin_delays == gb.pin_delays

    def test_different_seeds_differ(self, s27):
        import copy
        a = copy.deepcopy(s27)
        b = copy.deepcopy(s27)
        apply_process_variation(a, seed=1)
        apply_process_variation(b, seed=2)
        assert any(ga.pin_delays != gb.pin_delays
                   for ga, gb in zip(a.gates, b.gates))

    def test_delays_stay_positive(self, s27):
        import copy
        c = copy.deepcopy(s27)
        apply_process_variation(c, seed=3, sigma_fraction=0.9)
        for g in c.gates:
            for r, f in g.pin_delays:
                assert r > 0 and f > 0

    def test_spread_magnitude(self, small_generated):
        import copy
        c = copy.deepcopy(small_generated)
        before = {g.index: g.pin_delays for g in c.gates if g.pin_delays}
        apply_process_variation(c, seed=4, sigma_fraction=0.2, clamp=3.0)
        ratios = []
        for idx, delays in before.items():
            for (r0, _f0), (r1, _f1) in zip(delays, c.gates[idx].pin_delays):
                ratios.append(r1 / r0)
        assert min(ratios) >= 1 - 3 * 0.2 - 1e-9
        assert max(ratios) <= 1 + 3 * 0.2 + 1e-9
        assert max(ratios) - min(ratios) > 0.1  # actually spread out
