"""Tests for the VCD waveform exporter."""

from __future__ import annotations

import re

import pytest

from repro.simulation.vcd import _identifier, save_vcd, write_vcd
from repro.simulation.wave_sim import WaveformSimulator


@pytest.fixture()
def sim_result(s27):
    sim = WaveformSimulator(s27)
    srcs = s27.sources()
    v1 = [0] * len(srcs)
    v2 = [1] * len(srcs)
    return sim.simulate(v1, v2)


class TestIdentifiers:
    def test_unique_and_printable(self):
        ids = [_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500
        for s in ids:
            assert all(33 <= ord(ch) <= 126 for ch in s)

    def test_compact(self):
        assert len(_identifier(0)) == 1
        assert len(_identifier(93)) == 1
        assert len(_identifier(94)) == 2


class TestWriteVcd:
    def test_header_structure(self, sim_result):
        text = write_vcd(sim_result, date="2026-07-06")
        assert "$timescale 1fs $end" in text
        assert "$scope module s27 $end" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text
        assert "2026-07-06" in text

    def test_var_per_gate(self, sim_result):
        text = write_vcd(sim_result)
        assert text.count("$var wire 1 ") == len(sim_result.circuit.gates)

    def test_gate_subset(self, sim_result):
        gates = sim_result.circuit.outputs
        text = write_vcd(sim_result, gates=gates)
        assert text.count("$var wire 1 ") == len(gates)

    def test_timestamps_monotonic(self, sim_result):
        text = write_vcd(sim_result)
        times = [int(m) for m in re.findall(r"^#(\d+)$", text, re.M)]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_change_count_matches_waveforms(self, sim_result):
        gates = list(range(len(sim_result.circuit.gates)))
        expected = sum(sim_result.waveforms[g].num_transitions
                       for g in gates)
        text = write_vcd(sim_result)
        body = text.split("$end\n", maxsplit=text.count("$end"))[-1]
        after_dump = text.split("$dumpvars")[1].split("$end", 1)[1]
        changes = re.findall(r"^[01][!-~]+$", after_dump, re.M)
        assert len(changes) == expected

    def test_save(self, tmp_path, sim_result):
        path = tmp_path / "out.vcd"
        save_vcd(sim_result, path, comment="test dump")
        assert "test dump" in path.read_text()
