"""Tests for the structural Verilog writer/reader."""

from __future__ import annotations

import pytest

from repro.netlist.verilog import (
    VerilogParseError,
    load_verilog,
    parse_verilog,
    save_verilog,
    write_verilog,
)
from repro.simulation.parallel_sim import BitParallelSimulator


def simulate_outputs(circuit, vectors):
    """Output values of a circuit per vector (functional equivalence probe)."""
    sim = BitParallelSimulator(circuit)
    words, width = sim.pack_vectors(vectors)
    values = sim.simulate(words, width)
    out = []
    for p in range(width):
        out.append(tuple(values[g] >> p & 1 for g in circuit.outputs))
    return out


class TestRoundTrip:
    def test_s27_roundtrip_structure(self, s27):
        text = write_verilog(s27)
        again = parse_verilog(text)
        assert again.num_gates == s27.num_gates
        assert again.num_ffs == s27.num_ffs
        assert len(again.inputs) == len(s27.inputs)
        assert len(again.outputs) == len(s27.outputs)

    def test_c17_roundtrip_functional(self, c17):
        again = parse_verilog(write_verilog(c17))
        import itertools
        vectors = list(itertools.product((0, 1), repeat=5))
        assert simulate_outputs(c17, vectors) == simulate_outputs(again, vectors)

    def test_generated_roundtrip_functional(self, small_generated):
        import random
        again = parse_verilog(write_verilog(small_generated))
        rng = random.Random(1)
        width = len(small_generated.sources())
        vectors = [tuple(rng.randint(0, 1) for _ in range(width))
                   for _ in range(32)]
        # Source ordering may differ; map by name.
        src_a = [small_generated.gates[i].name
                 for i in small_generated.sources()]
        src_b = [again.gates[i].name for i in again.sources()]
        remap = [src_a.index(n) for n in src_b]
        vectors_b = [tuple(v[i] for i in remap) for v in vectors]
        out_a = simulate_outputs(small_generated, vectors)
        out_b = simulate_outputs(again, vectors_b)
        # Outputs may be reordered as well; compare as name-keyed dicts.
        names_a = [small_generated.gates[g].name
                   for g in small_generated.outputs]
        names_b = [again.gates[g].name for g in again.outputs]
        for row_a, row_b in zip(out_a, out_b):
            assert dict(zip(names_a, row_a)) == dict(zip(names_b, row_b))

    def test_save_load(self, tmp_path, c17):
        path = tmp_path / "c17.v"
        save_verilog(c17, path)
        again = load_verilog(path)
        assert again.num_gates == c17.num_gates


class TestParseErrors:
    def test_no_module(self):
        with pytest.raises(VerilogParseError, match="no module"):
            parse_verilog("wire x;")

    def test_missing_endmodule(self):
        with pytest.raises(VerilogParseError, match="endmodule"):
            parse_verilog("module m (a); input a;")

    def test_unknown_cell(self):
        src = """module m (a, y); input a; output y;
        MUX21_X1 U0 (.A(a), .B(a), .Z(y)); endmodule"""
        with pytest.raises(VerilogParseError, match="unknown cell"):
            parse_verilog(src)

    def test_undriven_output(self):
        src = "module m (a, y); input a; output y; endmodule"
        with pytest.raises(VerilogParseError, match="undriven"):
            parse_verilog(src)

    def test_double_driver(self):
        src = """module m (a, y); input a; output y;
        INV_X1 U0 (.A(a), .ZN(y));
        INV_X1 U1 (.A(a), .ZN(y)); endmodule"""
        with pytest.raises(VerilogParseError, match="driven twice"):
            parse_verilog(src)

    def test_instance_without_output_pin(self):
        src = """module m (a, y); input a; output y;
        INV_X1 U0 (.A(a)); endmodule"""
        with pytest.raises(VerilogParseError, match="no output pin"):
            parse_verilog(src)


class TestFeatures:
    def test_comments_stripped(self):
        src = """// line comment
        module m (a, y); /* block
        comment */ input a; output y;
        INV_X1 U0 (.A(a), .ZN(y)); // trailing
        endmodule"""
        assert parse_verilog(src).num_gates == 1

    def test_constant_assign(self):
        src = """module m (y); output y; wire one;
        assign one = 1'b1;
        INV_X1 U0 (.A(one), .ZN(y)); endmodule"""
        c = parse_verilog(src)
        assert c.has_gate("one")

    def test_dff_parsed(self):
        src = """module m (a, q); input a; output q;
        DFF_X1 U0 (.D(w), .Q(q));
        INV_X1 U1 (.A(a), .ZN(w)); endmodule"""
        c = parse_verilog(src)
        assert c.num_ffs == 1
