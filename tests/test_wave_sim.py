"""Tests for the topological waveform simulator."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.models import FaultSite, SmallDelayFault
from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit, GateKind
from repro.simulation.logic import eval_binary
from repro.simulation.wave_sim import WaveformSimulator


def chain_circuit() -> Circuit:
    c = Circuit("chain3")
    a = c.add_input("a")
    g1 = c.add_gate("g1", GateKind.NOT, [a])
    g2 = c.add_gate("g2", GateKind.NOT, [g1])
    g3 = c.add_gate("g3", GateKind.NOT, [g2])
    c.mark_output(g3)
    return c.finalize()


class TestFaultFree:
    def test_requires_finalized(self):
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(ValueError):
            WaveformSimulator(c)

    def test_pattern_length_checked(self, tiny_circuit):
        sim = WaveformSimulator(tiny_circuit)
        with pytest.raises(ValueError, match="pattern length"):
            sim.simulate([0], [1])

    def test_constant_inputs_no_events(self, tiny_circuit):
        sim = WaveformSimulator(tiny_circuit)
        n = len(tiny_circuit.sources())
        res = sim.simulate([0] * n, [0] * n)
        for w in res.waveforms:
            assert w.num_transitions == 0

    def test_chain_delay_accumulates(self):
        c = chain_circuit()
        sim = WaveformSimulator(c)
        res = sim.simulate([0], [1])
        out = res.waveforms[c.index_of("g3")]
        assert out.num_transitions == 1
        t = out.events[0][0]
        # Three inverters: rising in, so g1 falls, g2 rises, g3 falls.
        g1, g2, g3 = (c.gate_by_name(n) for n in ("g1", "g2", "g3"))
        expected = (g1.pin_delays[0][1] + g2.pin_delays[0][0]
                    + g3.pin_delays[0][1])
        assert t == pytest.approx(expected)

    def test_final_values_match_static_eval(self, s27):
        rng = random.Random(0)
        sim = WaveformSimulator(s27)
        srcs = s27.sources()
        for _ in range(20):
            v1 = [rng.randint(0, 1) for _ in srcs]
            v2 = [rng.randint(0, 1) for _ in srcs]
            res = sim.simulate(v1, v2)
            static = {}
            for idx in s27.topo_order:
                g = s27.gates[idx]
                if GateKind.is_source(g.kind):
                    static[idx] = v2[srcs.index(idx)]
                else:
                    static[idx] = eval_binary(
                        g.kind, [static[s] for s in g.fanin])
            for idx in s27.topo_order:
                assert res.waveforms[idx].final_value == static[idx], \
                    s27.gates[idx].name

    def test_initial_values_match_launch_static_eval(self, s27):
        rng = random.Random(1)
        sim = WaveformSimulator(s27)
        srcs = s27.sources()
        v1 = [rng.randint(0, 1) for _ in srcs]
        v2 = [rng.randint(0, 1) for _ in srcs]
        res = sim.simulate(v1, v2)
        static = {}
        for idx in s27.topo_order:
            g = s27.gates[idx]
            if GateKind.is_source(g.kind):
                static[idx] = v1[srcs.index(idx)]
            else:
                static[idx] = eval_binary(g.kind, [static[s] for s in g.fanin])
        for idx in s27.topo_order:
            assert res.waveforms[idx].initial == static[idx]

    def test_output_waveforms_keys(self, tiny_circuit):
        sim = WaveformSimulator(tiny_circuit)
        n = len(tiny_circuit.sources())
        res = sim.simulate([0] * n, [1] * n)
        waves = res.output_waveforms()
        assert set(waves) == {op.name
                              for op in tiny_circuit.observation_points()}

    def test_no_transition_before_zero(self, small_generated):
        sim = WaveformSimulator(small_generated)
        rng = random.Random(2)
        srcs = small_generated.sources()
        v1 = [rng.randint(0, 1) for _ in srcs]
        v2 = [rng.randint(0, 1) for _ in srcs]
        res = sim.simulate(v1, v2)
        for w in res.waveforms:
            for t, _v in w.events:
                assert t >= 0.0


class TestFaultInjection:
    def fault_at(self, circuit, name, rising, delta, pin=None):
        gate = circuit.index_of(name)
        site = FaultSite(gate) if pin is None else FaultSite(gate, pin)
        return SmallDelayFault(site, slow_to_rise=rising, delta=delta)

    def test_output_fault_delays_transition(self):
        c = chain_circuit()
        sim = WaveformSimulator(c)
        base = sim.simulate([0], [1])
        fault = self.fault_at(c, "g2", rising=True, delta=50.0)
        faulty = sim.simulate_fault(base, fault)
        t0 = base.waveforms[c.index_of("g2")].events[0][0]
        t1 = faulty.waveforms[c.index_of("g2")].events[0][0]
        assert t1 == pytest.approx(t0 + 50.0)

    def test_wrong_polarity_fault_is_silent(self):
        c = chain_circuit()
        sim = WaveformSimulator(c)
        base = sim.simulate([0], [1])
        # g2 rises; a slow-to-fall fault there must not change anything.
        fault = self.fault_at(c, "g2", rising=False, delta=50.0)
        faulty = sim.simulate_fault(base, fault)
        assert faulty.waveforms[c.index_of("g3")] == \
            base.waveforms[c.index_of("g3")]

    def test_fault_effect_propagates_downstream(self):
        c = chain_circuit()
        sim = WaveformSimulator(c)
        base = sim.simulate([0], [1])
        fault = self.fault_at(c, "g1", rising=False, delta=30.0)
        faulty = sim.simulate_fault(base, fault)
        for name in ("g1", "g2", "g3"):
            t0 = base.waveforms[c.index_of(name)].events[0][0]
            t1 = faulty.waveforms[c.index_of(name)].events[0][0]
            assert t1 == pytest.approx(t0 + 30.0)

    def test_fault_outside_cone_unchanged(self, tiny_circuit):
        sim = WaveformSimulator(tiny_circuit)
        srcs = tiny_circuit.sources()
        base = sim.simulate([0] * len(srcs), [1] * len(srcs))
        fault = self.fault_at(tiny_circuit, "G2", rising=True, delta=40.0)
        faulty = sim.simulate_fault(base, fault)
        # G1 is not in G2's fanout cone.
        assert faulty.waveforms[tiny_circuit.index_of("G1")] is \
            base.waveforms[tiny_circuit.index_of("G1")]

    def test_input_pin_fault_affects_single_branch(self):
        # B fans out to two gates; a branch fault on one gate's pin must not
        # touch the other branch.
        src = """
        INPUT(a)
        INPUT(b)
        OUTPUT(y1)
        OUTPUT(y2)
        y1 = AND(a, b)
        y2 = OR(a, b)
        """
        c = parse_bench(src, name="branch")
        sim = WaveformSimulator(c)
        base = sim.simulate([1, 0], [1, 1])  # b rises
        y1_gate = c.index_of("y1")
        pin_of_b = list(c.gates[y1_gate].fanin).index(c.index_of("b"))
        fault = SmallDelayFault(FaultSite(y1_gate, pin_of_b),
                                slow_to_rise=True, delta=25.0)
        faulty = sim.simulate_fault(base, fault)
        assert faulty.waveforms[c.index_of("y2")] == \
            base.waveforms[c.index_of("y2")]
        t0 = base.waveforms[y1_gate].events[0][0]
        t1 = faulty.waveforms[y1_gate].events[0][0]
        assert t1 == pytest.approx(t0 + 25.0)

    def test_small_fault_filtered_by_inertia(self):
        # A fault smaller than the inertial threshold that creates only a
        # sub-threshold pulse gets filtered out.
        c = chain_circuit()
        sim = WaveformSimulator(c, inertial=5.0)
        base = sim.simulate([0], [1])
        fault = self.fault_at(c, "g3", rising=False, delta=60.0)
        faulty = sim.simulate_fault(base, fault)
        # The delayed transition still occurs (single edge, no pulse).
        assert faulty.waveforms[c.index_of("g3")].num_transitions == 1

    def test_fault_free_waveforms_never_mutated(self, s27):
        sim = WaveformSimulator(s27)
        srcs = s27.sources()
        rng = random.Random(3)
        v1 = [rng.randint(0, 1) for _ in srcs]
        v2 = [rng.randint(0, 1) for _ in srcs]
        base = sim.simulate(v1, v2)
        snapshot = list(base.waveforms)
        fault = SmallDelayFault(FaultSite(s27.index_of("G9")), True, 40.0)
        sim.simulate_fault(base, fault)
        assert base.waveforms == snapshot


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**10 - 1), st.integers(0, 2**10 - 1))
def test_property_final_value_matches_static(v1bits, v2bits):
    """Waveform final values equal the static evaluation of v2 on s27."""
    from repro.circuits.library import embedded_circuit
    c = embedded_circuit("s27")
    srcs = c.sources()
    v1 = [(v1bits >> i) & 1 for i in range(len(srcs))]
    v2 = [(v2bits >> i) & 1 for i in range(len(srcs))]
    sim = WaveformSimulator(c)
    res = sim.simulate(v1, v2)
    static = {}
    for idx in c.topo_order:
        g = c.gates[idx]
        if GateKind.is_source(g.kind):
            static[idx] = v2[srcs.index(idx)]
        else:
            static[idx] = eval_binary(g.kind, [static[s] for s in g.fanin])
    assert all(res.waveforms[i].final_value == static[i] for i in c.topo_order)
