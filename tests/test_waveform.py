"""Unit and property tests for transition-list waveforms."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.simulation.waveform import Waveform
from repro.utils.intervals import EPS


class TestConstruction:
    def test_constant(self):
        w = Waveform.constant(1)
        assert w.initial == 1
        assert w.final_value == 1
        assert w.num_transitions == 0

    def test_step(self):
        w = Waveform.step(0, 5.0)
        assert w.value_at(4.9) == 0
        assert w.value_at(5.0) == 1
        assert w.final_value == 1

    def test_bad_initial_raises(self):
        with pytest.raises(ValueError):
            Waveform(2)

    def test_bad_event_value_raises(self):
        with pytest.raises(ValueError):
            Waveform(0, [(1.0, 7)])

    def test_canonicalization_drops_noops(self):
        w = Waveform(0, [(1.0, 0), (2.0, 1), (3.0, 1)])
        assert w.events == ((2.0, 1),)

    def test_canonicalization_sorts(self):
        w = Waveform(0, [(3.0, 0), (1.0, 1)])
        assert w.events == ((1.0, 1), (3.0, 0))

    def test_same_time_last_wins(self):
        w = Waveform(0, [(1.0, 1), (1.0, 0)])
        assert w.events == ()

    def test_alternating_invariant(self):
        w = Waveform(0, [(1, 1), (2, 1), (3, 0), (4, 0), (5, 1)])
        values = [v for _t, v in w.events]
        assert values == [1, 0, 1]


class TestQueries:
    def test_value_at_sequence(self):
        w = Waveform(0, [(1.0, 1), (2.0, 0), (4.0, 1)])
        assert [w.value_at(t) for t in (0.5, 1.5, 3.0, 5.0)] == [0, 1, 0, 1]

    def test_value_at_boundary_right_continuous(self):
        """Bisect lookup keeps the EPS right-continuity of the old scan."""
        w = Waveform(0, [(1.0, 1), (2.0, 0)])
        # Exactly at a transition the new value already holds...
        assert w.value_at(1.0) == 1
        assert w.value_at(2.0) == 0
        # ...including within EPS before it (the tolerance window)...
        assert w.value_at(1.0 - EPS / 2) == 1
        assert w.value_at(2.0 - EPS / 2) == 0
        # ...but not beyond EPS before it.
        assert w.value_at(1.0 - 3 * EPS) == 0
        assert w.value_at(2.0 - 3 * EPS) == 1

    def test_value_at_before_first_and_after_last(self):
        w = Waveform(1, [(5.0, 0)])
        assert w.value_at(-10.0) == 1
        assert w.value_at(4.0) == 1
        assert w.value_at(1e12) == 0
        assert Waveform.constant(1).value_at(0.0) == 1

    def test_value_at_matches_linear_scan(self):
        """The bisect result equals the reference linear-scan definition."""
        w = Waveform(0, [(1.0, 1), (2.5, 0), (4.0, 1), (8.0, 0)])

        def scan(t):
            value = w.initial
            for et, ev in w.events:
                if et <= t + EPS:
                    value = ev
            return value

        probes = [t + d for t in (0.0, 1.0, 2.5, 4.0, 8.0)
                  for d in (-1.0, -2 * EPS, -EPS / 2, 0.0, EPS / 2, 1.0)]
        assert [w.value_at(t) for t in probes] == [scan(t) for t in probes]

    def test_last_event_time(self):
        assert Waveform(0, [(1.0, 1), (7.5, 0)]).last_event_time == 7.5
        assert Waveform.constant(0).last_event_time == 0.0

    def test_has_transition_polarity(self):
        w = Waveform(0, [(1.0, 1)])
        assert w.has_transition()
        assert w.has_transition(rising=True)
        assert not w.has_transition(rising=False)

    def test_is_stable_in(self):
        w = Waveform(0, [(5.0, 1)])
        assert w.is_stable_in(0.0, 5.0)   # boundary toggle does not count
        assert not w.is_stable_in(4.0, 6.0)

    def test_sample(self):
        w = Waveform(0, [(1.0, 1), (3.0, 0)])
        assert w.sample([0.0, 1.0, 2.0, 3.0, 4.0]) == [0, 1, 1, 0, 0]


class TestTransformations:
    def test_delayed_polarity(self):
        w = Waveform(0, [(1.0, 1), (5.0, 0)])
        d = w.delayed(2.0, 0.5)
        assert d.events == ((3.0, 1), (5.5, 0))

    def test_delayed_reorder_collapses(self):
        # Huge fall delay pushes the falling edge past the next rising one;
        # canonicalization keeps a legal alternating sequence.
        w = Waveform(0, [(1.0, 1), (2.0, 0), (3.0, 1)])
        d = w.delayed(0.0, 10.0)
        values = [v for _t, v in d.events]
        for a, b in zip(values, values[1:]):
            assert a != b

    def test_shifted(self):
        w = Waveform(1, [(1.0, 0)])
        assert w.shifted(4.0).events == ((5.0, 0),)

    def test_inverted(self):
        w = Waveform(0, [(1.0, 1)])
        inv = w.inverted()
        assert inv.initial == 1
        assert inv.events == ((1.0, 0),)

    def test_inertial_removes_short_pulse(self):
        w = Waveform(0, [(1.0, 1), (1.4, 0), (5.0, 1)])
        f = w.inertial_filtered(1.0)
        assert f.events == ((5.0, 1),)

    def test_inertial_keeps_wide_pulse(self):
        w = Waveform(0, [(1.0, 1), (3.0, 0)])
        assert w.inertial_filtered(1.0) == w

    def test_inertial_cascades(self):
        # Removing one pulse can create a new short pair; filtering iterates.
        w = Waveform(0, [(1.0, 1), (1.2, 0), (1.4, 1), (9.0, 0)])
        f = w.inertial_filtered(0.5)
        values = [v for _t, v in f.events]
        for a, b in zip(values, values[1:]):
            assert a != b
        for (t1, _), (t2, _) in zip(f.events, f.events[1:]):
            assert t2 - t1 >= 0.5 - 1e-9


class TestDiffIntervals:
    def test_identical_waveforms_no_diff(self):
        w = Waveform(0, [(1.0, 1)])
        assert w.diff_intervals(w, 10.0).is_empty

    def test_simple_delay_diff(self):
        a = Waveform(0, [(1.0, 1)])
        b = Waveform(0, [(3.0, 1)])
        d = a.diff_intervals(b, 10.0)
        assert len(d) == 1
        assert d.intervals[0].lo == pytest.approx(1.0)
        assert d.intervals[0].hi == pytest.approx(3.0)

    def test_diff_extends_to_horizon(self):
        a = Waveform(0, [(1.0, 1)])
        b = Waveform.constant(0)
        d = a.diff_intervals(b, 8.0)
        assert d.intervals[-1].hi == pytest.approx(8.0)

    def test_diff_initial_values(self):
        a = Waveform(0)
        b = Waveform(1)
        d = a.diff_intervals(b, 4.0)
        assert d.measure == pytest.approx(4.0)

    def test_diff_symmetry(self):
        a = Waveform(0, [(1.0, 1), (4.0, 0)])
        b = Waveform(0, [(2.0, 1), (6.0, 0)])
        assert a.diff_intervals(b, 10.0) == b.diff_intervals(a, 10.0)


class TestSequentialSchedule:
    """Direct tests of the inertial scheduling core (the rule that keeps
    the waveform and event engines in agreement)."""

    def test_monotone_input_passthrough(self):
        from repro.simulation.waveform import sequential_schedule
        events = [(1.0, 1), (10.0, 0), (20.0, 1)]
        assert sequential_schedule(0, events, 5.0) == events

    def test_reordered_pulse_annihilates(self):
        from repro.simulation.waveform import sequential_schedule
        # Rise scheduled at 82.55, fall overtakes it at 80.85: no pulse.
        assert sequential_schedule(0, [(82.55, 1), (80.85, 0)], 5.0) == []

    def test_narrow_pulse_filtered(self):
        from repro.simulation.waveform import sequential_schedule
        assert sequential_schedule(0, [(10.0, 1), (12.0, 0)], 5.0) == []

    def test_wide_pulse_survives(self):
        from repro.simulation.waveform import sequential_schedule
        events = [(10.0, 1), (20.0, 0)]
        assert sequential_schedule(0, events, 5.0) == events

    def test_cancellation_cascades(self):
        from repro.simulation.waveform import sequential_schedule
        # Three close transitions: the middle pair cancels, the survivor
        # must still respect the threshold against what remains.
        out = sequential_schedule(0, [(10.0, 1), (12.0, 0), (13.0, 1)], 5.0)
        assert out == [(13.0, 1)]

    def test_no_op_transitions_dropped(self):
        from repro.simulation.waveform import sequential_schedule
        assert sequential_schedule(1, [(5.0, 1)], 0.0) == []

    def test_output_spacing_invariant(self):
        from repro.simulation.waveform import sequential_schedule
        import random
        rng = random.Random(0)
        for _ in range(50):
            events = [(rng.uniform(0, 100), rng.randint(0, 1))
                      for _ in range(12)]
            out = sequential_schedule(0, events, 5.0)
            for (t1, v1), (t2, v2) in zip(out, out[1:]):
                assert t2 - t1 >= 5.0 - 1e-9
                assert v1 != v2


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
times = st.floats(min_value=0.0, max_value=1000.0,
                  allow_nan=False, allow_infinity=False)


@st.composite
def waveforms(draw):
    initial = draw(st.integers(0, 1))
    events = draw(st.lists(st.tuples(times, st.integers(0, 1)), max_size=10))
    return Waveform(initial, events)


@given(waveforms())
def test_events_strictly_alternate(w):
    prev = w.initial
    prev_t = -1.0
    for t, v in w.events:
        assert v != prev
        assert t > prev_t
        prev, prev_t = v, t


@given(waveforms(), times)
def test_shift_preserves_transition_count(w, d):
    assert w.shifted(d).num_transitions == w.num_transitions


@given(waveforms())
def test_double_inversion_is_identity(w):
    assert w.inverted().inverted() == w


@given(waveforms(), st.floats(min_value=0.1, max_value=50))
def test_inertial_filter_never_adds_transitions(w, th):
    assert w.inertial_filtered(th).num_transitions <= w.num_transitions


@given(waveforms(), st.floats(min_value=0.1, max_value=50))
def test_inertial_filter_preserves_endpoints(w, th):
    f = w.inertial_filtered(th)
    assert f.initial == w.initial
    # A filtered pulse pair never changes the settled value.
    assert f.final_value == w.final_value


@given(waveforms(), waveforms())
def test_diff_intervals_symmetric(a, b):
    assert a.diff_intervals(b, 1000.0) == b.diff_intervals(a, 1000.0)


@given(waveforms(), waveforms(), times)
def test_diff_matches_pointwise(a, b, t):
    d = a.diff_intervals(b, 1000.0)
    if d.contains(t, tol=0.0) and not any(
            abs(t - boundary) < 1e-6 for boundary in d.boundaries()):
        assert a.value_at(t) != b.value_at(t)


@given(waveforms(), st.floats(min_value=0, max_value=100),
       st.floats(min_value=0, max_value=100))
def test_delayed_moves_events_forward(w, dr, df):
    d = w.delayed(dr, df)
    if w.events and d.events:
        assert d.events[0][0] >= w.events[0][0] - 1e-9
