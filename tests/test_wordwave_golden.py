"""Randomized golden parity of the wordwave array-kernel engine.

Fifty seeded synthetic circuits across sizes, depths and fanout shapes,
each simulated with the batched ``"wordwave"`` engine and the seed
``"reference"`` engine; the resulting ``DetectionData`` must be
bit-identical (same (fault, pattern) keys, exactly equal interval sets).
A deterministic skewed-path circuit additionally pins the inertial-filter
boundary: a pulse whose width is *exactly* the threshold survives, while
one narrower by more than ``EPS`` is cancelled — in both engines alike.
"""

from __future__ import annotations

import random

import pytest

from repro.atpg.patterns import random_test_set
from repro.circuits.generators import CircuitProfile, generate_circuit
from repro.core.config import FlowConfig
from repro.faults.detection import compute_detection_data
from repro.faults.universe import small_delay_fault_universe
from repro.netlist.circuit import Circuit
from repro.simulation.wave_sim import WaveformSimulator
from repro.simulation.word_wave import wordwave_fallback_reason
from repro.timing.sta import run_sta
from repro.utils.intervals import EPS

#: (n_gates, n_ffs, depth) shapes cycled over the 50 seeds; fanout and
#: reconvergence knobs vary with the seed below.
_SHAPES = [
    (40, 8, 5),
    (80, 12, 8),
    (150, 20, 10),
    (60, 6, 6),
    (120, 24, 9),
]
_N_CIRCUITS = 50
_MAX_FAULTS = 36
_N_PATTERNS = 6


def _profile(seed: int) -> CircuitProfile:
    n_gates, n_ffs, depth = _SHAPES[seed % len(_SHAPES)]
    return CircuitProfile(
        name=f"gold{seed}",
        n_gates=n_gates,
        n_ffs=n_ffs,
        n_inputs=6 + seed % 5,
        n_outputs=3 + seed % 3,
        depth=depth,
        seed=seed,
        long_edge_prob=0.15 + 0.05 * (seed % 7),
        short_path_ppo_fraction=0.25 + 0.1 * (seed % 4),
        endpoint_side_gates=seed % 3,
    )


def _workload(circuit: Circuit, seed: int):
    faults = small_delay_fault_universe(circuit)
    if len(faults) > _MAX_FAULTS:
        faults = random.Random(seed).sample(faults, _MAX_FAULTS)
    patterns = random_test_set(circuit, _N_PATTERNS, seed=seed)
    obs = sorted(op.gate for op in circuit.observation_points())
    monitored = frozenset(obs[::2])
    horizon = run_sta(circuit).clock_period
    return faults, patterns, monitored, horizon


def _assert_identical(a, b, ctx=""):
    assert set(a.ranges) == set(b.ranges), ctx
    for fi, per_pattern in a.ranges.items():
        assert set(per_pattern) == set(b.ranges[fi]), (ctx, fi)
        for pi, fpr in per_pattern.items():
            other = b.ranges[fi][pi]
            assert fpr.i_all == other.i_all, (ctx, fi, pi)
            assert fpr.i_mon == other.i_mon, (ctx, fi, pi)


@pytest.mark.parametrize("seed", range(_N_CIRCUITS))
def test_wordwave_matches_reference(seed):
    circuit = generate_circuit(_profile(seed))
    faults, patterns, monitored, horizon = _workload(circuit, seed)
    inertial = FlowConfig().inertial_ps
    # The suite must exercise the array kernels, not the fallback path.
    assert wordwave_fallback_reason(circuit, patterns, inertial) is None

    results = {}
    for engine in ("wordwave", "reference"):
        results[engine] = compute_detection_data(
            circuit, faults, patterns, horizon=horizon,
            monitored_gates=monitored, inertial=inertial, engine=engine)
    _assert_identical(results["wordwave"], results["reference"],
                      ctx=f"seed={seed}")


# ----------------------------------------------------------------------
# Inertial-filter boundary: pulse width exactly at the threshold
# ----------------------------------------------------------------------

def _skewed_pulse_circuit():
    """Reconvergent XOR whose output pulse width equals the path skew.

    One PI reaches an XOR twice: directly and through a buffer chain.  A
    launch transition on the PI produces an output pulse exactly as wide
    as the delay difference between the two paths.
    """
    c = Circuit("pulse")
    a = c.add_input("a")
    b1 = c.add_gate("b1", "BUF", [a])
    b2 = c.add_gate("b2", "BUF", [b1])
    x = c.add_gate("x", "XOR", [a, b2])
    c.mark_output(x)
    c.finalize()
    return c, x


def _pulse_width(circuit, gate, patterns):
    """Width of the XOR output pulse under inertial-free simulation."""
    sim = WaveformSimulator(circuit, inertial=0.0)
    for pp in patterns:
        res = sim.simulate(pp.launch, pp.capture)
        events = res.waveform_of(gate).events
        if len(events) >= 2:
            return events[1][0] - events[0][0]
    raise AssertionError("no pulse produced")  # pragma: no cover


def test_inertial_boundary_pulse_exactly_at_threshold():
    circuit, x_gate = _skewed_pulse_circuit()
    patterns = random_test_set(circuit, 8, seed=5)
    width = _pulse_width(circuit, x_gate, patterns)
    assert width > 4 * EPS  # a real, resolvable pulse

    faults = small_delay_fault_universe(circuit)
    obs = sorted(op.gate for op in circuit.observation_points())
    horizon = run_sta(circuit).clock_period

    # Exactly at the threshold the pulse survives (`w < inertial - EPS` is
    # False); one EPS-resolvable step narrower and it is filtered.  Both
    # engines must agree on either side of the boundary.
    for inertial in (width, width - 4 * EPS, width + 4 * EPS,
                     0.5 * width, 2.0 * width):
        assert wordwave_fallback_reason(circuit, patterns, inertial) is None
        got = {}
        for engine in ("wordwave", "reference"):
            got[engine] = compute_detection_data(
                circuit, faults, patterns, horizon=horizon,
                monitored_gates=frozenset(obs), inertial=inertial,
                engine=engine)
        _assert_identical(got["wordwave"], got["reference"],
                          ctx=f"inertial={inertial}")
