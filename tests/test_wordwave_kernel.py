"""Unit tests of the wordwave array kernels against the scalar reference.

Each kernel is pinned to the pure-Python semantics it replaces: the gate
LUTs to truth tables, the vectorized inertial scheduler to
``sequential_schedule``, the full levelized base sweep to
``WaveformSimulator.simulate``, and the parity-sampling interval extractor
to ``Waveform.diff_intervals`` + glitch filtering.  The golden-parity
suite (``test_wordwave_golden.py``) covers the engines end-to-end; these
tests localize any divergence to one kernel.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.atpg.patterns import random_test_set
from repro.circuits.generators import CircuitProfile, generate_circuit
from repro.netlist.circuit import GateKind
from repro.simulation.wave_sim import WaveformSimulator
from repro.simulation.waveform import Waveform, sequential_schedule
from repro.simulation.word_wave import (
    MAX_ARITY,
    _SUPPORTED_KINDS,
    _kind_lut,
    _plan_for,
    wordwave_fallback_reason,
)
from repro.utils.intervals import EPS


def _scalar_gate(kind, inputs):
    """Truth-table reference for one supported combinational kind."""
    if kind in (GateKind.AND, GateKind.NAND):
        out = all(inputs)
    elif kind in (GateKind.OR, GateKind.NOR):
        out = any(inputs)
    elif kind in (GateKind.XOR, GateKind.XNOR):
        out = bool(sum(inputs) & 1)
    else:  # NOT / BUF
        out = bool(inputs[0])
    if kind in (GateKind.NAND, GateKind.NOR, GateKind.XNOR, GateKind.NOT):
        out = not out
    return int(out)


class TestKindLut:
    @pytest.mark.parametrize("kind", sorted(_SUPPORTED_KINDS))
    def test_lut_matches_truth_table(self, kind):
        arities = ([1] if kind in (GateKind.NOT, GateKind.BUF)
                   else [2] if kind in (GateKind.XOR, GateKind.XNOR)
                   else [2, 3, 4])
        for arity in arities:
            a_max = MAX_ARITY
            lut = _kind_lut(kind, arity, a_max)
            for idx in range(1 << arity):
                inputs = [(idx >> p) & 1 for p in range(arity)]
                assert (lut >> idx) & 1 == _scalar_gate(kind, inputs), (
                    kind, arity, inputs)

    def test_phantom_pins_ignored(self):
        # Index bits beyond the arity (constant-0 padding pins) must not
        # change the output.
        lut = _kind_lut(GateKind.NAND, 2, MAX_ARITY)
        for idx in range(1 << 2):
            base = (lut >> idx) & 1
            for high in range(1, 1 << (MAX_ARITY - 2)):
                assert (lut >> (idx | (high << 2))) & 1 == base


def _plan(inertial=5.0):
    profile = CircuitProfile(name="kern", n_gates=60, n_ffs=10,
                             n_inputs=8, n_outputs=4, depth=6, seed=11)
    circuit = generate_circuit(profile)
    return circuit, _plan_for(circuit, inertial)


class TestScheduleKernel:
    def _rows(self, rng, n, k):
        """Random causal candidate rows: times forward-ordered per trigger
        but locally non-monotonic (rise/fall skew), like the merge output."""
        cand_t = np.full((n, k), np.inf)
        cand_c = np.zeros(n, dtype=np.int64)
        for r in range(n):
            c = rng.randint(0, k)
            t = 0.0
            times = []
            for _ in range(c):
                t += rng.choice([0.3, 2.0, 4.9, 5.0, 5.1, 12.0])
                # Occasional backward step models a fall overtaking a rise.
                times.append(t + rng.choice([0.0, 0.0, -1.5]))
            cand_t[r, :c] = times
            cand_c[r] = c
        return cand_t, cand_c

    def test_matches_sequential_schedule(self):
        _, plan = _plan(inertial=5.0)
        rng = random.Random(7)
        cand_t, cand_c = self._rows(rng, 200, 6)
        with np.errstate(invalid="ignore"):
            out_t, out_c = plan._schedule(cand_t, cand_c)
        for r in range(cand_t.shape[0]):
            # Candidate values strictly alternate from initial 0.
            events = [(cand_t[r, j], (j + 1) & 1)
                      for j in range(cand_c[r])]
            ref = sequential_schedule(0, events, 5.0)
            got = [(out_t[r, j]) for j in range(out_c[r])]
            assert got == pytest.approx([t for t, _ in ref]), r
            # Padding past the count stays the +inf sentinel.
            assert np.all(np.isinf(out_t[r, out_c[r]:]))


class TestBaseSweep:
    def test_matches_reference_simulator(self):
        circuit, plan = _plan(inertial=5.0)
        patterns = random_test_set(circuit, 4, seed=3)
        assert wordwave_fallback_reason(circuit, patterns, 5.0) is None
        with np.errstate(invalid="ignore"):
            plan.base_sweep(patterns)
        sim = WaveformSimulator(circuit, inertial=5.0)
        p_n = len(patterns)
        for pi, pp in enumerate(patterns):
            res = sim.simulate(pp.launch, pp.capture)
            for g in range(len(circuit.gates)):
                if not plan.is_comb[g] and g not in circuit.sources():
                    continue
                row = g * p_n + pi
                c = int(plan.base.c[row])
                init = int(plan.base.i[row])
                events = tuple(
                    (float(plan.base.t[row, j]), init ^ ((j + 1) & 1))
                    for j in range(c))
                want = res.waveform_of(g)
                assert init == want.initial, (g, pi)
                assert len(events) == len(want.events), (g, pi)
                for got_e, want_e in zip(events, want.events):
                    assert got_e[1] == want_e[1], (g, pi)
                    assert got_e[0] == pytest.approx(want_e[0]), (g, pi)


class TestExtractPieces:
    def _row(self, rng, k, horizon):
        c = rng.randint(0, k)
        times, t = [], 0.0
        for _ in range(c):
            t += rng.uniform(0.5, horizon / max(k, 1))
            times.append(t)
        return times

    def test_matches_diff_intervals(self):
        _, plan = _plan(inertial=5.0)
        rng = random.Random(23)
        horizon, threshold, k, n = 40.0, 3.0, 5, 300
        b_t = np.full((n, k), np.inf)
        b_c = np.zeros(n, dtype=np.int64)
        f_t = np.full((n, k), np.inf)
        f_c = np.zeros(n, dtype=np.int64)
        inits = np.zeros(n, dtype=np.uint8)
        for r in range(n):
            bt = self._row(rng, k, horizon)
            ft = self._row(rng, k, horizon) if rng.random() < 0.7 else list(bt)
            b_t[r, :len(bt)] = bt
            b_c[r] = len(bt)
            f_t[r, :len(ft)] = ft
            f_c[r] = len(ft)
            inits[r] = rng.randint(0, 1)
        # The kernel assumes base and faulty rows share the same initial
        # value (a delay fault never changes it).
        with np.errstate(invalid="ignore"):
            row, lo, hi = plan.extract_pieces(b_t, b_c, f_t, f_c,
                                              horizon, threshold)
        got = {r: [] for r in range(n)}
        for r, l, h in zip(row.tolist(), lo.tolist(), hi.tolist()):
            got[r].append((l, h))
        for r in range(n):
            init = int(inits[r])
            wb = Waveform(init, [(b_t[r, j], init ^ ((j + 1) & 1))
                                 for j in range(b_c[r])])
            wf = Waveform(init, [(f_t[r, j], init ^ ((j + 1) & 1))
                                 for j in range(f_c[r])])
            ref = wb.diff_intervals(wf, horizon).filter_glitches(threshold)
            want = [(iv.lo, iv.hi) for iv in ref.intervals]
            assert got[r] == pytest.approx(want), r


class TestFallbackReasons:
    def test_tiny_inertial_rejected(self, s27):
        patterns = random_test_set(s27, 2, seed=1)
        reason = wordwave_fallback_reason(s27, patterns, EPS)
        assert reason is not None and "inertial" in reason

    def test_dont_cares_rejected(self, s27):
        from repro.atpg.patterns import PatternPair, TestSet
        from repro.simulation.logic import X
        width = len(s27.sources())
        ts = TestSet(s27)
        ts.append(PatternPair((X,) + (0,) * (width - 1), (1,) * width))
        reason = wordwave_fallback_reason(s27, ts, 5.0)
        assert reason is not None and "don't-care" in reason

    def test_supported_suite_circuit_accepted(self, s27):
        patterns = random_test_set(s27, 2, seed=1)
        assert wordwave_fallback_reason(s27, patterns, 5.0) is None
